// Tests for the guardrail layer (ISSUE 2): cooperative deadlines with
// best-so-far degradation, the feasibility pre-flight with its repair
// path, the partition-state invariant audit, and the CLI error taxonomy.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <type_traits>

#include "gen/netlist_gen.hpp"
#include "hg/builder.hpp"
#include "hg/io_solution.hpp"
#include "ml/multilevel.hpp"
#include "part/balance.hpp"
#include "part/feasibility.hpp"
#include "part/fm.hpp"
#include "part/initial.hpp"
#include "util/deadline.hpp"
#include "util/errors.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace fixedpart {
namespace {

gen::GeneratedCircuit medium_circuit(std::uint64_t seed = 11) {
  gen::CircuitSpec spec;
  spec.name = "guardrails";
  spec.num_cells = 400;
  spec.num_nets = 440;
  spec.num_pads = 12;
  spec.seed = seed;
  return gen::generate_circuit(spec);
}

/// 2 parts, total weight 22, perfect side 11: two weight-10 vertices
/// pinned into part 0 overflow any tolerance below ~81.8%.
hg::Hypergraph overloaded_graph() {
  hg::HypergraphBuilder builder;
  builder.add_vertex(10);
  builder.add_vertex(10);
  builder.add_vertex(1);
  builder.add_vertex(1);
  builder.add_net(std::vector<hg::VertexId>{0, 2}, 1);
  builder.add_net(std::vector<hg::VertexId>{1, 3}, 1);
  return builder.build();
}

hg::FixedAssignment overloaded_fixed(const hg::Hypergraph& graph) {
  hg::FixedAssignment fixed(graph.num_vertices(), 2);
  fixed.fix(0, 0);
  fixed.fix(1, 0);
  return fixed;
}

// ------------------------------------------------------------- Deadline --

TEST(Guardrails, UnlimitedDeadlineNeverExpires) {
  const util::Deadline deadline;
  EXPECT_FALSE(deadline.limited());
  EXPECT_FALSE(deadline.expired());
  EXPECT_TRUE(std::isinf(deadline.remaining_seconds()));
}

TEST(Guardrails, ZeroBudgetIsAlreadyExpired) {
  const util::Deadline deadline = util::Deadline::after_seconds(0.0);
  EXPECT_TRUE(deadline.limited());
  EXPECT_TRUE(deadline.expired());
  EXPECT_EQ(deadline.remaining_seconds(), 0.0);
}

TEST(Guardrails, GenerousBudgetNotExpired) {
  const util::Deadline deadline = util::Deadline::after_seconds(3600.0);
  EXPECT_TRUE(deadline.limited());
  EXPECT_FALSE(deadline.expired());
  EXPECT_GT(deadline.remaining_seconds(), 3000.0);
}

TEST(Guardrails, DeadlineIsImmuneToSystemClockJumps) {
  // The budget clock must be monotonic: a Deadline built from a duration
  // measures elapsed *steady* time, so stepping the system clock (NTP,
  // suspend/resume, `date`) can neither fire it early nor stall it. We
  // cannot step the wall clock from a test, so pin the contract two ways:
  // the clock type itself, and the duration semantics around "now".
  static_assert(
      std::is_same_v<util::Deadline::Clock, std::chrono::steady_clock>,
      "Deadline must use the steady clock");
  static_assert(util::Deadline::Clock::is_steady,
                "Deadline clock must be monotonic");
  static_assert(std::is_same_v<util::Timer::Clock, std::chrono::steady_clock>,
                "Timer must use the steady clock");

  // A duration-built deadline is relative to construction, not to any
  // absolute wall-clock timestamp: a generous budget has (almost) all of
  // its budget remaining immediately, and a tiny one expires by waiting,
  // never by consulting the system clock.
  const util::Deadline generous = util::Deadline::after_seconds(3600.0);
  EXPECT_FALSE(generous.expired());
  EXPECT_GT(generous.remaining_seconds(), 3590.0);
  EXPECT_LE(generous.remaining_seconds(), 3600.0);

  const util::Deadline tiny = util::Deadline::after_seconds(1e-9);
  const auto start = util::Deadline::Clock::now();
  while (!tiny.expired()) {
    ASSERT_LT(util::Deadline::Clock::now() - start, std::chrono::seconds(5))
        << "deadline failed to expire on the steady clock";
  }
  EXPECT_EQ(tiny.remaining_seconds(), 0.0);
}

TEST(Guardrails, CancelFlagExpiresDeadline) {
  std::atomic<bool> cancel{false};
  util::Deadline deadline;  // unlimited by time
  deadline.set_cancel_flag(&cancel);
  EXPECT_TRUE(deadline.limited());
  EXPECT_FALSE(deadline.expired());
  cancel.store(true);
  EXPECT_TRUE(deadline.expired());
}

// ------------------------------------------------- FM under a deadline --

TEST(Guardrails, FmExpiredDeadlineReturnsBestSoFar) {
  const gen::GeneratedCircuit circuit = medium_circuit();
  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 10.0);
  part::PartitionState state(circuit.graph, 2);
  util::Rng rng(5);
  part::random_feasible_assignment(state, fixed, balance, rng);
  const hg::Weight initial = state.cut();

  const util::Deadline deadline = util::Deadline::after_seconds(0.0);
  part::FmConfig config;
  config.deadline = &deadline;
  part::FmBipartitioner fm(circuit.graph, fixed, balance);
  const part::FmResult result = fm.refine(state, rng, config);

  EXPECT_TRUE(result.truncated);
  EXPECT_EQ(result.passes, 0);
  EXPECT_EQ(result.final_cut, initial);
  EXPECT_EQ(state.cut(), initial);
  EXPECT_NO_THROW(state.check_invariants());  // no mid-move snapshot
}

TEST(Guardrails, FmGenerousDeadlineMatchesUnlimitedRun) {
  const gen::GeneratedCircuit circuit = medium_circuit();
  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 10.0);

  const auto solve = [&](const util::Deadline* deadline) {
    part::PartitionState state(circuit.graph, 2);
    util::Rng rng(5);
    part::random_feasible_assignment(state, fixed, balance, rng);
    part::FmConfig config;
    config.deadline = deadline;
    part::FmBipartitioner fm(circuit.graph, fixed, balance);
    const part::FmResult result = fm.refine(state, rng, config);
    EXPECT_FALSE(result.truncated);
    return result.final_cut;
  };

  const util::Deadline generous = util::Deadline::after_seconds(3600.0);
  // Deadline checks consume no randomness, so the trajectories and cuts
  // must be bit-identical.
  EXPECT_EQ(solve(nullptr), solve(&generous));
}

// ----------------------------------------- multilevel under a deadline --

TEST(Guardrails, MultilevelExpiredDeadlineStillCompleteAndValid) {
  const gen::GeneratedCircuit circuit = medium_circuit();
  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 10.0);
  const ml::MultilevelPartitioner partitioner(circuit.graph, fixed, balance);

  const util::Deadline deadline = util::Deadline::after_seconds(0.0);
  ml::MultilevelConfig config;
  config.deadline = &deadline;
  util::Rng rng(7);
  const ml::MultilevelResult result = partitioner.run(rng, config);

  EXPECT_TRUE(result.truncated);
  ASSERT_EQ(result.assignment.size(), circuit.graph.num_vertices());
  for (hg::VertexId v = 0; v < circuit.graph.num_vertices(); ++v) {
    ASSERT_LT(result.assignment[v], 2);
  }
  // The reported cut must match the assignment it came with.
  EXPECT_EQ(hg::solution_cut(circuit.graph, result.assignment, 2),
            result.cut);
}

TEST(Guardrails, MultilevelCancelFlagTruncates) {
  const gen::GeneratedCircuit circuit = medium_circuit();
  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 10.0);
  const ml::MultilevelPartitioner partitioner(circuit.graph, fixed, balance);

  std::atomic<bool> cancel{true};  // cancelled before work starts
  util::Deadline deadline;
  deadline.set_cancel_flag(&cancel);
  ml::MultilevelConfig config;
  config.deadline = &deadline;
  util::Rng rng(7);
  const ml::MultilevelResult result = partitioner.run(rng, config);
  EXPECT_TRUE(result.truncated);
  EXPECT_EQ(result.assignment.size(), circuit.graph.num_vertices());
}

TEST(Guardrails, BestOfExpiredDeadlineRunsFallbackStart) {
  const gen::GeneratedCircuit circuit = medium_circuit();
  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 10.0);
  const ml::MultilevelPartitioner partitioner(circuit.graph, fixed, balance);

  const util::Deadline deadline = util::Deadline::after_seconds(0.0);
  ml::MultilevelConfig config;
  config.deadline = &deadline;
  util::Rng rng(9);
  const ml::MultilevelResult result = partitioner.best_of(8, rng, config);
  EXPECT_TRUE(result.truncated);
  ASSERT_EQ(result.assignment.size(), circuit.graph.num_vertices());
  EXPECT_EQ(hg::solution_cut(circuit.graph, result.assignment, 2),
            result.cut);
}

TEST(Guardrails, BestOfParallelExpiredDeadlineRunsFallbackStart) {
  const gen::GeneratedCircuit circuit = medium_circuit();
  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 10.0);
  const ml::MultilevelPartitioner partitioner(circuit.graph, fixed, balance);

  const util::Deadline deadline = util::Deadline::after_seconds(0.0);
  ml::MultilevelConfig config;
  config.deadline = &deadline;
  const ml::MultilevelResult result =
      partitioner.best_of_parallel(8, 2, /*seed=*/3, config);
  EXPECT_TRUE(result.truncated);
  ASSERT_EQ(result.assignment.size(), circuit.graph.num_vertices());
  EXPECT_EQ(hg::solution_cut(circuit.graph, result.assignment, 2),
            result.cut);
}

TEST(Guardrails, MultilevelGenerousDeadlineNotTruncated) {
  const gen::GeneratedCircuit circuit = medium_circuit();
  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 10.0);
  const ml::MultilevelPartitioner partitioner(circuit.graph, fixed, balance);

  const util::Deadline deadline = util::Deadline::after_seconds(3600.0);
  ml::MultilevelConfig config;
  config.deadline = &deadline;
  util::Rng with_deadline_rng(21);
  const ml::MultilevelResult with_deadline =
      partitioner.run(with_deadline_rng, config);
  EXPECT_FALSE(with_deadline.truncated);

  ml::MultilevelConfig no_deadline_config;
  util::Rng no_deadline_rng(21);
  const ml::MultilevelResult no_deadline =
      partitioner.run(no_deadline_rng, no_deadline_config);
  EXPECT_EQ(with_deadline.cut, no_deadline.cut);
}

// -------------------------------------------------- feasibility checks --

TEST(Guardrails, FreeInstanceIsFeasible) {
  const hg::Hypergraph graph = overloaded_graph();
  const hg::FixedAssignment fixed(graph.num_vertices(), 2);  // nothing fixed
  const auto balance = part::BalanceConstraint::relative(graph, 2, 10.0);
  const part::FeasibilityReport report =
      part::check_feasibility(graph, fixed, balance);
  EXPECT_TRUE(report.feasible);
  EXPECT_FALSE(report.empty_freedom);
  EXPECT_TRUE(report.issues.empty());
}

TEST(Guardrails, AllVerticesFixedReportsEmptyFreedom) {
  hg::HypergraphBuilder builder;
  builder.add_vertex(1);
  builder.add_vertex(1);
  builder.add_net(std::vector<hg::VertexId>{0, 1}, 1);
  const hg::Hypergraph graph = builder.build();
  hg::FixedAssignment fixed(2, 2);
  fixed.fix(0, 0);
  fixed.fix(1, 1);
  const auto balance = part::BalanceConstraint::relative(graph, 2, 10.0);
  const part::FeasibilityReport report =
      part::check_feasibility(graph, fixed, balance);
  EXPECT_TRUE(report.feasible);  // the unique assignment is balanced
  EXPECT_TRUE(report.empty_freedom);
}

TEST(Guardrails, OverloadedFixedWeightIsDetected) {
  const hg::Hypergraph graph = overloaded_graph();
  const hg::FixedAssignment fixed = overloaded_fixed(graph);
  const auto balance = part::BalanceConstraint::relative(graph, 2, 0.0);
  const part::FeasibilityReport report =
      part::check_feasibility(graph, fixed, balance);
  EXPECT_FALSE(report.feasible);
  ASSERT_FALSE(report.issues.empty());
  EXPECT_FALSE(report.summary().empty());
}

TEST(Guardrails, HallBoundCatchesRestrictedMaskOverflow) {
  // 3 parts, total weight 60, perfect 20, tolerance 0 -> cap 20 per part.
  // Five weight-10 vertices restricted to parts {0,1} carry 50 > 40.
  hg::HypergraphBuilder builder;
  for (int v = 0; v < 6; ++v) builder.add_vertex(10);
  builder.add_net(std::vector<hg::VertexId>{0, 1, 2}, 1);
  builder.add_net(std::vector<hg::VertexId>{3, 4, 5}, 1);
  const hg::Hypergraph graph = builder.build();
  hg::FixedAssignment fixed(6, 3);
  for (hg::VertexId v = 0; v < 5; ++v) fixed.restrict_to(v, 0b011);
  const auto balance = part::BalanceConstraint::relative(graph, 3, 0.0);
  const part::FeasibilityReport report =
      part::check_feasibility(graph, fixed, balance);
  EXPECT_FALSE(report.feasible);
  // Restricting only three of them (30 <= 40) is fine.
  hg::FixedAssignment lighter(6, 3);
  for (hg::VertexId v = 0; v < 3; ++v) lighter.restrict_to(v, 0b011);
  EXPECT_TRUE(part::check_feasibility(graph, lighter, balance).feasible);
}

TEST(Guardrails, MinFeasibleToleranceBisection) {
  const hg::Hypergraph graph = overloaded_graph();
  const hg::FixedAssignment fixed = overloaded_fixed(graph);
  // 20 pinned into a perfect side of 11 -> needs ~81.82% tolerance.
  const double min_pct =
      part::min_feasible_tolerance_pct(graph, fixed, 2);
  EXPECT_GT(min_pct, 81.0);
  EXPECT_LT(min_pct, 82.5);
  // Free instance: already feasible at 0.
  const hg::FixedAssignment free_fixed(graph.num_vertices(), 2);
  EXPECT_EQ(part::min_feasible_tolerance_pct(graph, free_fixed, 2), 0.0);
  // Capped search below the needed tolerance reports failure, not a lie.
  EXPECT_LT(part::min_feasible_tolerance_pct(graph, fixed, 2,
                                             /*max_pct=*/10.0),
            0.0);
}

TEST(Guardrails, PreflightBalanceRepairLoosensAndReports) {
  const hg::Hypergraph graph = overloaded_graph();
  const hg::FixedAssignment fixed = overloaded_fixed(graph);
  part::FeasibilityReport report;
  const part::BalanceConstraint repaired = part::preflight_balance(
      graph, fixed, 2, /*tolerance_pct=*/0.0, /*repair=*/true, &report);
  EXPECT_TRUE(report.repaired);
  EXPECT_GT(report.tolerance_pct, 81.0);
  // The repaired constraint actually admits the pinned weight.
  EXPECT_TRUE(part::check_feasibility(graph, fixed, repaired).feasible);
  // Without repair the same instance is a structured error.
  EXPECT_THROW(part::preflight_balance(graph, fixed, 2, 0.0),
               util::InfeasibleError);
}

TEST(Guardrails, MultilevelPreflightGatesInfeasibleInstances) {
  const hg::Hypergraph graph = overloaded_graph();
  const hg::FixedAssignment fixed = overloaded_fixed(graph);
  const auto balance = part::BalanceConstraint::relative(graph, 2, 0.0);
  const ml::MultilevelPartitioner partitioner(graph, fixed, balance);
  util::Rng rng(3);

  ml::MultilevelConfig strict;
  strict.preflight = true;
  EXPECT_THROW(partitioner.run(rng, strict), util::InfeasibleError);

  // Default (preflight off): best-effort, the paper's rand-regime
  // protocol — a complete assignment comes back, never a throw.
  const ml::MultilevelResult result =
      partitioner.run(rng, ml::MultilevelConfig{});
  EXPECT_EQ(result.assignment.size(), graph.num_vertices());
}

// ------------------------------------------------------ invariant audit --

TEST(Guardrails, CheckInvariantsAcceptsConsistentState) {
  const gen::GeneratedCircuit circuit = medium_circuit(23);
  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 10.0);
  part::PartitionState state(circuit.graph, 2);
  util::Rng rng(23);
  part::random_feasible_assignment(state, fixed, balance, rng);
  EXPECT_NO_THROW(state.check_invariants());
}

TEST(Guardrails, FmWithInvariantAuditRunsClean) {
  const gen::GeneratedCircuit circuit = medium_circuit(29);
  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 10.0);
  part::PartitionState state(circuit.graph, 2);
  util::Rng rng(29);
  part::random_feasible_assignment(state, fixed, balance, rng);

  part::FmConfig config;
  config.check_invariants = true;
  config.max_passes = 2;  // the audit is O(movable * degree) per move
  part::FmBipartitioner fm(circuit.graph, fixed, balance);
  EXPECT_NO_THROW(fm.refine(state, rng, config));
  EXPECT_NO_THROW(state.check_invariants());
}

// ------------------------------------------------------- CLI taxonomy --

TEST(Guardrails, RunCliMainMapsTaxonomyToExitCodes) {
  using util::run_cli_main;
  EXPECT_EQ(run_cli_main("t", [] { return 0; }), util::kExitOk);
  EXPECT_EQ(run_cli_main("t", []() -> int {
              throw util::UsageError("bad flag");
            }),
            util::kExitUsage);
  EXPECT_EQ(run_cli_main("t", []() -> int {
              throw std::invalid_argument("unknown option");
            }),
            util::kExitUsage);
  EXPECT_EQ(run_cli_main("t", []() -> int {
              throw util::InputError("bad file");
            }),
            util::kExitInput);
  EXPECT_EQ(run_cli_main("t", []() -> int {
              throw util::InfeasibleError("pinned weight over capacity");
            }),
            util::kExitInfeasible);
  EXPECT_EQ(run_cli_main("t", []() -> int {
              throw std::runtime_error("bug");
            }),
            util::kExitInternal);
}

}  // namespace
}  // namespace fixedpart
