#include "hg/io_netare.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "hg/builder.hpp"
#include "hg/stats.hpp"

namespace fixedpart::hg {
namespace {

TEST(IoNetD, ReadsBasicInstance) {
  std::istringstream net(
      "0\n"
      "5\n"
      "2\n"
      "3\n"
      "1\n"           // cells a0, a1; pad p1
      "a0 s O\n"
      "a1 l I\n"
      "p1 l I\n"
      "a1 s B\n"
      "a0 l B\n");
  std::istringstream are(
      "a0 10\n"
      "a1 20\n"
      "p1 0\n");
  const NetDInstance inst = read_netd(net, are);
  EXPECT_EQ(inst.graph.num_vertices(), 3);
  EXPECT_EQ(inst.graph.num_nets(), 2);
  EXPECT_EQ(inst.graph.vertex_weight(0), 10);
  EXPECT_EQ(inst.graph.vertex_weight(1), 20);
  EXPECT_TRUE(inst.graph.is_pad(2));
  EXPECT_EQ(inst.graph.net_size(0), 3);
  EXPECT_EQ(inst.graph.net_size(1), 2);
  EXPECT_EQ(inst.names[0], "a0");
  EXPECT_EQ(inst.names[2], "p1");
  inst.graph.validate();
}

TEST(IoNetD, DefaultAreasWhenAreFileSparse) {
  std::istringstream net(
      "0\n2\n1\n2\n0\n"
      "a0 s\n"
      "p1 l\n");
  std::istringstream are("");  // no areas: cells default 1, pads 0
  const NetDInstance inst = read_netd(net, are);
  EXPECT_EQ(inst.graph.vertex_weight(0), 1);
  EXPECT_EQ(inst.graph.vertex_weight(1), 0);
}

TEST(IoNetD, RoundTripPreservesStructure) {
  HypergraphBuilder b;
  const VertexId c0 = b.add_vertex(5);
  const VertexId pad = b.add_vertex(0, /*is_pad=*/true);
  const VertexId c1 = b.add_vertex(7);
  b.add_net(std::vector<VertexId>{c0, c1});
  b.add_net(std::vector<VertexId>{c1, pad});
  const Hypergraph g = b.build();

  std::ostringstream net_out;
  std::ostringstream are_out;
  write_netd(net_out, are_out, g);
  std::istringstream net_in(net_out.str());
  std::istringstream are_in(are_out.str());
  const NetDInstance inst = read_netd(net_in, are_in);

  EXPECT_EQ(inst.graph.num_vertices(), 3);
  EXPECT_EQ(inst.graph.num_nets(), 2);
  EXPECT_EQ(inst.graph.num_pads(), 1);
  EXPECT_EQ(inst.graph.num_pins(), g.num_pins());
  EXPECT_EQ(inst.graph.total_weight(), g.total_weight());
  const InstanceStats before = compute_stats(g);
  const InstanceStats after = compute_stats(inst.graph);
  EXPECT_EQ(before.num_external_nets, after.num_external_nets);
  EXPECT_EQ(before.max_cell_area, after.max_cell_area);
}

struct BadNetD {
  const char* label;
  const char* net;
  const char* are;
};

class IoNetDErrors : public ::testing::TestWithParam<BadNetD> {};

TEST_P(IoNetDErrors, Rejected) {
  std::istringstream net(GetParam().net);
  std::istringstream are(GetParam().are);
  EXPECT_THROW(read_netd(net, are), std::runtime_error) << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    Grammar, IoNetDErrors,
    ::testing::Values(
        BadNetD{"empty", "", ""},
        BadNetD{"pin count mismatch", "0\n9\n1\n2\n0\na0 s\np1 l\n", ""},
        BadNetD{"net count mismatch", "0\n2\n5\n2\n0\na0 s\np1 l\n", ""},
        BadNetD{"l before s", "0\n1\n1\n1\n0\na0 l\n", ""},
        BadNetD{"bad marker", "0\n1\n1\n1\n0\na0 x\n", ""},
        BadNetD{"bad direction", "0\n1\n1\n1\n0\na0 s Q\n", ""},
        BadNetD{"cell out of range", "0\n1\n1\n1\n0\na9 s\n", ""},
        BadNetD{"pad out of range", "0\n1\n1\n1\n0\np2 s\n", ""},
        BadNetD{"bad prefix", "0\n1\n1\n1\n0\nx0 s\n", ""},
        BadNetD{"bad are line", "0\n1\n1\n1\n0\na0 s\n", "a0\n"},
        BadNetD{"are names unknown module", "0\n1\n1\n1\n0\na0 s\n",
                "a5 3\n"}));

TEST(IoNetD, FileRoundTrip) {
  HypergraphBuilder b;
  b.add_vertex(1);
  b.add_vertex(2);
  b.add_net(std::vector<VertexId>{0, 1});
  const Hypergraph g = b.build();
  const std::string net_path = ::testing::TempDir() + "/x.netD";
  const std::string are_path = ::testing::TempDir() + "/x.are";
  write_netd_files(net_path, are_path, g);
  const NetDInstance inst = read_netd_files(net_path, are_path);
  EXPECT_EQ(inst.graph.num_vertices(), 2);
  EXPECT_THROW(read_netd_files("/nope.netD", are_path), std::runtime_error);
  EXPECT_THROW(read_netd_files(net_path, "/nope.are"), std::runtime_error);
}

}  // namespace
}  // namespace fixedpart::hg
