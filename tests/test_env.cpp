#include "util/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace fixedpart::util {
namespace {

class ScaleEnv : public ::testing::Test {
 protected:
  void TearDown() override { unsetenv("REPRO_SCALE"); }
};

TEST_F(ScaleEnv, DefaultsWhenUnset) {
  unsetenv("REPRO_SCALE");
  EXPECT_EQ(scale_from_env(), Scale::kDefault);
}

TEST_F(ScaleEnv, ParsesKnownValues) {
  setenv("REPRO_SCALE", "smoke", 1);
  EXPECT_EQ(scale_from_env(), Scale::kSmoke);
  setenv("REPRO_SCALE", "paper", 1);
  EXPECT_EQ(scale_from_env(), Scale::kPaper);
  setenv("REPRO_SCALE", "default", 1);
  EXPECT_EQ(scale_from_env(), Scale::kDefault);
}

TEST_F(ScaleEnv, UnknownFallsBackToDefault) {
  setenv("REPRO_SCALE", "galactic", 1);
  EXPECT_EQ(scale_from_env(), Scale::kDefault);
}

TEST(Scale, ToString) {
  EXPECT_EQ(to_string(Scale::kSmoke), "smoke");
  EXPECT_EQ(to_string(Scale::kDefault), "default");
  EXPECT_EQ(to_string(Scale::kPaper), "paper");
}

TEST(Scale, BySscalePicksCorrectArm) {
  EXPECT_EQ(by_scale(Scale::kSmoke, 1, 2, 3), 1);
  EXPECT_EQ(by_scale(Scale::kDefault, 1, 2, 3), 2);
  EXPECT_EQ(by_scale(Scale::kPaper, 1, 2, 3), 3);
  EXPECT_DOUBLE_EQ(by_scale(Scale::kPaper, 0.1, 0.2, 0.3), 0.3);
}

}  // namespace
}  // namespace fixedpart::util
