#include <gtest/gtest.h>
#include <cmath>

#include "gen/netlist_gen.hpp"
#include "gen/rent.hpp"
#include "gen/rent_fit.hpp"
#include "gen/suite.hpp"
#include "hg/stats.hpp"

namespace fixedpart::gen {
namespace {

TEST(Rent, TerminalsClosedForm) {
  // T = 3.5 * 1000^0.68.
  EXPECT_NEAR(rent_terminals(1000, 0.68, 3.5), 3.5 * std::pow(1000.0, 0.68),
              1e-9);
  EXPECT_DOUBLE_EQ(rent_terminals(0, 0.68, 3.5), 0.0);
  EXPECT_THROW(rent_terminals(-1, 0.68, 3.5), std::invalid_argument);
}

TEST(Rent, FixedFractionDecreasesWithBlockSize) {
  const double small = fixed_fraction(100, 0.68, 3.5);
  const double large = fixed_fraction(100000, 0.68, 3.5);
  EXPECT_GT(small, large);
  EXPECT_GT(small, 0.0);
  EXPECT_LT(small, 1.0);
}

TEST(Rent, ThresholdInvertsFixedFraction) {
  // At the threshold block size, the fixed fraction equals the target.
  for (const double p : {0.55, 0.68, 0.75}) {
    for (const double a : {0.05, 0.10, 0.20}) {
      const double c = threshold_block_size(p, 3.5, a);
      EXPECT_NEAR(fixed_fraction(c, p, 3.5), a, 1e-9)
          << "p=" << p << " a=" << a;
    }
  }
}

TEST(Rent, ThresholdGrowsWithRentParameter) {
  EXPECT_LT(threshold_block_size(0.55, 3.5, 0.10),
            threshold_block_size(0.75, 3.5, 0.10));
}

TEST(Rent, ThresholdShrinksWithLargerFraction) {
  EXPECT_GT(threshold_block_size(0.68, 3.5, 0.05),
            threshold_block_size(0.68, 3.5, 0.20));
}

TEST(Rent, ThresholdValidation) {
  EXPECT_THROW(threshold_block_size(0.68, 3.5, 0.0), std::invalid_argument);
  EXPECT_THROW(threshold_block_size(0.68, 3.5, 1.0), std::invalid_argument);
  EXPECT_THROW(threshold_block_size(1.0, 3.5, 0.1), std::invalid_argument);
}

TEST(Generator, MatchesRequestedCounts) {
  CircuitSpec spec;
  spec.num_cells = 1000;
  spec.num_nets = 1100;
  spec.num_pads = 40;
  spec.seed = 5;
  const GeneratedCircuit c = generate_circuit(spec);
  EXPECT_EQ(c.graph.num_vertices(), 1040);
  EXPECT_EQ(c.graph.num_nets(), 1100);
  EXPECT_EQ(c.graph.num_pads(), 40);
  EXPECT_EQ(c.placement.x.size(), 1040u);
  c.graph.validate();
}

TEST(Generator, DeterministicForSeed) {
  CircuitSpec spec;
  spec.num_cells = 500;
  spec.num_nets = 550;
  spec.num_pads = 20;
  spec.seed = 9;
  const GeneratedCircuit a = generate_circuit(spec);
  const GeneratedCircuit b = generate_circuit(spec);
  ASSERT_EQ(a.graph.num_pins(), b.graph.num_pins());
  for (hg::NetId e = 0; e < a.graph.num_nets(); ++e) {
    ASSERT_EQ(a.graph.net_size(e), b.graph.net_size(e));
  }
  for (hg::VertexId v = 0; v < a.graph.num_vertices(); ++v) {
    EXPECT_EQ(a.graph.vertex_weight(v), b.graph.vertex_weight(v));
    EXPECT_DOUBLE_EQ(a.placement.x[v], b.placement.x[v]);
  }
}

TEST(Generator, IspdLikeCharacteristics) {
  CircuitSpec spec;
  spec.num_cells = 3000;
  spec.num_nets = 3300;
  spec.num_pads = 80;
  spec.num_macros = 3;
  spec.macro_area_pct = 2.5;
  spec.seed = 17;
  const GeneratedCircuit c = generate_circuit(spec);
  const hg::InstanceStats s = hg::compute_stats(c.graph);
  // Net degree distribution: average in the ISPD-98 ballpark.
  EXPECT_GT(s.avg_net_degree, 3.0);
  EXPECT_LT(s.avg_net_degree, 4.5);
  // Pins per cell ~ 3.5-4.5.
  EXPECT_GT(s.avg_cell_degree, 2.5);
  EXPECT_LT(s.avg_cell_degree, 5.0);
  // Macros occupy several percent of the area.
  EXPECT_GT(s.max_cell_area_pct, 1.5);
  EXPECT_LT(s.max_cell_area_pct, 8.0);
  // External nets exist and are a small fraction.
  EXPECT_GT(s.num_external_nets, 0);
  EXPECT_LT(s.num_external_nets, c.graph.num_nets() / 4);
  // Pads carry zero area.
  for (hg::VertexId v = 0; v < c.graph.num_vertices(); ++v) {
    if (c.graph.is_pad(v)) {
      EXPECT_EQ(c.graph.vertex_weight(v), 0);
    }
  }
}

TEST(Generator, WiringIsLocal) {
  // With strong locality, average net bounding-box span is much smaller
  // than the die span.
  CircuitSpec spec;
  spec.num_cells = 2500;
  spec.num_nets = 2500;
  spec.num_pads = 0;
  spec.num_macros = 0;
  spec.seed = 23;
  const GeneratedCircuit c = generate_circuit(spec);
  double total_span = 0.0;
  for (hg::NetId e = 0; e < c.graph.num_nets(); ++e) {
    double lo = 1e9;
    double hi = -1e9;
    for (hg::VertexId v : c.graph.pins(e)) {
      lo = std::min(lo, c.placement.x[v]);
      hi = std::max(hi, c.placement.x[v]);
    }
    total_span += hi - lo;
  }
  const double avg_span = total_span / c.graph.num_nets();
  EXPECT_LT(avg_span, c.placement.width / 4.0);
}

TEST(Generator, AddPinResource) {
  CircuitSpec spec;
  spec.num_cells = 200;
  spec.num_nets = 220;
  spec.num_pads = 8;
  spec.seed = 29;
  const GeneratedCircuit base = generate_circuit(spec);
  const GeneratedCircuit mb = add_pin_resource(base);
  EXPECT_EQ(mb.graph.num_resources(), 2);
  EXPECT_EQ(mb.graph.num_vertices(), base.graph.num_vertices());
  EXPECT_EQ(mb.graph.num_nets(), base.graph.num_nets());
  for (hg::VertexId v = 0; v < base.graph.num_vertices(); ++v) {
    EXPECT_EQ(mb.graph.vertex_weight(v, 0), base.graph.vertex_weight(v));
    EXPECT_EQ(mb.graph.vertex_weight(v, 1), base.graph.degree(v));
    EXPECT_EQ(mb.graph.is_pad(v), base.graph.is_pad(v));
  }
  EXPECT_EQ(mb.graph.total_weight(1), base.graph.num_pins());
  mb.graph.validate();
}

TEST(RentFit, GeneratedCircuitsAreRentian) {
  CircuitSpec spec;
  spec.num_cells = 4000;
  spec.num_nets = 4400;
  spec.num_pads = 100;
  spec.num_macros = 0;
  spec.seed = 31;
  const GeneratedCircuit c = generate_circuit(spec);
  const RentFit fit = fit_rent_exponent(c);
  // Rentian locality: exponent well inside (0, 1), ideally near the
  // 0.55-0.8 band of real designs.
  EXPECT_GT(fit.p, 0.35);
  EXPECT_LT(fit.p, 0.9);
  EXPECT_GT(fit.k, 0.0);
  ASSERT_GE(fit.points.size(), 3u);
  // Deeper levels have smaller blocks with fewer terminals each.
  for (std::size_t i = 1; i < fit.points.size(); ++i) {
    EXPECT_LT(fit.points[i].cells, fit.points[i - 1].cells);
  }
}

TEST(RentFit, GlobalWiringRaisesExponent) {
  CircuitSpec local;
  local.num_cells = 3000;
  local.num_nets = 3300;
  local.num_pads = 0;
  local.num_macros = 0;
  local.global_net_fraction = 0.0;
  local.seed = 32;
  CircuitSpec global = local;
  global.global_net_fraction = 0.9;  // almost all nets wired randomly
  const RentFit fit_local = fit_rent_exponent(generate_circuit(local));
  const RentFit fit_global = fit_rent_exponent(generate_circuit(global));
  EXPECT_LT(fit_local.p, fit_global.p);
}

TEST(RentFit, Validation) {
  CircuitSpec spec;
  spec.num_cells = 100;
  spec.num_nets = 120;
  spec.num_pads = 0;
  spec.seed = 33;
  const GeneratedCircuit c = generate_circuit(spec);
  EXPECT_THROW(fit_rent_exponent(c, 0), std::invalid_argument);
}

TEST(Generator, Validation) {
  CircuitSpec spec;
  spec.num_cells = 2;
  EXPECT_THROW(generate_circuit(spec), std::invalid_argument);
  spec.num_cells = 100;
  spec.num_nets = 0;
  EXPECT_THROW(generate_circuit(spec), std::invalid_argument);
}

TEST(Suite, FiveCircuitsAtEveryScale) {
  for (const util::Scale scale :
       {util::Scale::kSmoke, util::Scale::kDefault, util::Scale::kPaper}) {
    const auto specs = ibm_suite(scale);
    ASSERT_EQ(specs.size(), 5u);
    EXPECT_EQ(specs[0].name, "ibm01");
    EXPECT_EQ(specs[4].name, "ibm05");
  }
}

TEST(Suite, PaperScaleMatchesPublishedSizes) {
  const auto spec = ibm_like_spec(1, util::Scale::kPaper);
  EXPECT_EQ(spec.num_cells, 12506);
  EXPECT_EQ(spec.num_nets, 14111);
  const auto spec3 = ibm_like_spec(3, util::Scale::kPaper);
  EXPECT_EQ(spec3.num_cells, 22853);
  EXPECT_EQ(spec3.num_nets, 27401);
}

TEST(Suite, ScalesShrinkMonotonically) {
  const auto paper = ibm_like_spec(2, util::Scale::kPaper);
  const auto def = ibm_like_spec(2, util::Scale::kDefault);
  const auto smoke = ibm_like_spec(2, util::Scale::kSmoke);
  EXPECT_GT(paper.num_cells, def.num_cells);
  EXPECT_GT(def.num_cells, smoke.num_cells);
}

TEST(Suite, BadIndexThrows) {
  EXPECT_THROW(ibm_like_spec(0, util::Scale::kDefault),
               std::invalid_argument);
  EXPECT_THROW(ibm_like_spec(6, util::Scale::kDefault),
               std::invalid_argument);
}

}  // namespace
}  // namespace fixedpart::gen
