#include "part/balance.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hg/builder.hpp"

namespace fixedpart::part {
namespace {

hg::Hypergraph graph_with_total(Weight total) {
  hg::HypergraphBuilder b;
  b.add_vertex(total);
  return b.build();
}

TEST(BalanceConstraint, RelativeTwoPercentBisection) {
  const hg::Hypergraph g = graph_with_total(1000);
  const auto c = BalanceConstraint::relative(g, 2, 2.0);
  // perfect = 500, slack = 10.
  EXPECT_EQ(c.max_weight(0), 510);
  EXPECT_EQ(c.min_weight(0), 490);
  EXPECT_EQ(c.max_weight(1), 510);
}

TEST(BalanceConstraint, ZeroToleranceExactBisection) {
  const hg::Hypergraph g = graph_with_total(1000);
  const auto c = BalanceConstraint::relative(g, 2, 0.0);
  EXPECT_EQ(c.max_weight(0), 500);
  EXPECT_EQ(c.min_weight(0), 500);
}

TEST(BalanceConstraint, FourWay) {
  const hg::Hypergraph g = graph_with_total(400);
  const auto c = BalanceConstraint::relative(g, 4, 10.0);
  EXPECT_EQ(c.max_weight(3), 110);
  EXPECT_EQ(c.min_weight(3), 90);
}

TEST(BalanceConstraint, NegativeToleranceThrows) {
  const hg::Hypergraph g = graph_with_total(10);
  EXPECT_THROW(BalanceConstraint::relative(g, 2, -1.0),
               std::invalid_argument);
}

TEST(BalanceConstraint, FitsChecksEveryResource) {
  hg::HypergraphBuilder b(2);
  const Weight w[] = {100, 10};
  b.add_vertex(std::span<const Weight>(w, 2));
  const hg::Hypergraph g = b.build();
  const auto c = BalanceConstraint::relative(g, 2, 0.0);  // caps: 50, 5
  const std::vector<Weight> current = {40, 0};
  const std::vector<Weight> small = {10, 5};
  const std::vector<Weight> too_heavy_r1 = {10, 6};
  EXPECT_TRUE(c.fits(current, small, 0));
  EXPECT_FALSE(c.fits(current, too_heavy_r1, 0));
}

TEST(BalanceConstraint, SatisfiedAndStrict) {
  const hg::Hypergraph g = graph_with_total(100);
  const auto c = BalanceConstraint::relative(g, 2, 10.0);  // [45, 55]
  const std::vector<Weight> balanced = {50, 50};
  const std::vector<Weight> max_ok = {55, 45};
  const std::vector<Weight> overflow = {60, 40};
  const std::vector<Weight> underflow_only = {55, 30};
  EXPECT_TRUE(c.satisfied(balanced));
  EXPECT_TRUE(c.strictly_satisfied(balanced));
  EXPECT_TRUE(c.strictly_satisfied(max_ok));
  EXPECT_FALSE(c.satisfied(overflow));
  EXPECT_TRUE(c.satisfied(underflow_only));           // max-only view
  EXPECT_FALSE(c.strictly_satisfied(underflow_only)); // min violated
}

TEST(BalanceConstraint, FromSpecRelative) {
  const hg::Hypergraph g = graph_with_total(1000);
  hg::BalanceSpec spec;
  spec.relative = true;
  spec.tolerance_pct = 4.0;
  const auto c = BalanceConstraint::from_spec(g, 2, spec);
  EXPECT_EQ(c.max_weight(0), 520);
}

TEST(BalanceConstraint, FromSpecAbsoluteOverrides) {
  const hg::Hypergraph g = graph_with_total(1000);
  hg::BalanceSpec spec;
  spec.relative = false;
  spec.capacities.push_back({.part = 0, .resource = 0, .min = 100, .max = 700});
  const auto c = BalanceConstraint::from_spec(g, 2, spec);
  EXPECT_EQ(c.max_weight(0), 700);
  EXPECT_EQ(c.min_weight(0), 100);
  // Part 1 keeps the default 2% window.
  EXPECT_EQ(c.max_weight(1), 510);
}

TEST(BalanceConstraint, FromSpecValidation) {
  const hg::Hypergraph g = graph_with_total(10);
  hg::BalanceSpec spec;
  spec.relative = false;
  spec.capacities.push_back({.part = 5, .resource = 0, .min = 0, .max = 1});
  EXPECT_THROW(BalanceConstraint::from_spec(g, 2, spec),
               std::invalid_argument);
  spec.capacities = {{.part = 0, .resource = 3, .min = 0, .max = 1}};
  EXPECT_THROW(BalanceConstraint::from_spec(g, 2, spec),
               std::invalid_argument);
  spec.capacities = {{.part = 0, .resource = 0, .min = 5, .max = 1}};
  EXPECT_THROW(BalanceConstraint::from_spec(g, 2, spec),
               std::invalid_argument);
}

}  // namespace
}  // namespace fixedpart::part
