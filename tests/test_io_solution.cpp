#include "hg/io_solution.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "hg/builder.hpp"

namespace fixedpart::hg {
namespace {

Hypergraph path3() {
  HypergraphBuilder b;
  for (int i = 0; i < 3; ++i) b.add_vertex(1);
  b.add_net(std::vector<VertexId>{0, 1});
  b.add_net(std::vector<VertexId>{1, 2}, 3);
  return b.build();
}

TEST(IoSolution, RoundTrip) {
  Solution solution;
  solution.num_parts = 2;
  solution.assignment = {0, 0, 1};
  solution.cut = 3;
  std::ostringstream out;
  write_solution(out, solution);
  std::istringstream in(out.str());
  const Solution got = read_solution(in);
  EXPECT_EQ(got.num_parts, 2);
  EXPECT_EQ(got.cut, 3);
  EXPECT_EQ(got.assignment, solution.assignment);
}

TEST(IoSolution, SolutionCutMatchesPartitionSemantics) {
  const Hypergraph g = path3();
  EXPECT_EQ(solution_cut(g, {0, 0, 1}, 2), 3);
  EXPECT_EQ(solution_cut(g, {0, 1, 0}, 2), 4);
  EXPECT_EQ(solution_cut(g, {1, 1, 1}, 2), 0);
  EXPECT_THROW(solution_cut(g, {0, 1}, 2), std::invalid_argument);
  EXPECT_THROW(solution_cut(g, {0, 1, 5}, 2), std::invalid_argument);
}

TEST(IoSolution, CheckedLoadVerifiesCut) {
  const Hypergraph g = path3();
  Solution solution;
  solution.num_parts = 2;
  solution.assignment = {0, 0, 1};
  solution.cut = 3;
  std::ostringstream out;
  write_solution(out, solution);
  {
    std::istringstream in(out.str());
    EXPECT_NO_THROW(read_solution_checked(in, g));
  }
  solution.cut = 99;  // stale/corrupt cut
  std::ostringstream bad;
  write_solution(bad, solution);
  {
    std::istringstream in(bad.str());
    EXPECT_THROW(read_solution_checked(in, g), std::runtime_error);
  }
}

TEST(IoSolution, CheckedLoadVerifiesSize) {
  const Hypergraph g = path3();
  std::istringstream in("FPSOL 1.0\nvertices 2 parts 2 cut 0\n0\n0\n");
  EXPECT_THROW(read_solution_checked(in, g), std::runtime_error);
}

TEST(IoSolution, GrammarErrors) {
  for (const char* text :
       {"", "XSOL 1.0\nvertices 1 parts 2 cut 0\n0\n",
        "FPSOL 2.0\nvertices 1 parts 2 cut 0\n0\n",
        "FPSOL 1.0\nvertices 2 parts 2 cut 0\n0\n",      // missing line
        "FPSOL 1.0\nvertices 1 parts 2 cut 0\n7\n",      // part range
        "FPSOL 1.0\nvertices -1 parts 2 cut 0\n",        // bad counts
        "FPSOL 1.0\nnodes 1 parts 2 cut 0\n0\n"}) {      // bad keyword
    std::istringstream in(text);
    EXPECT_THROW(read_solution(in), std::runtime_error) << text;
  }
}

TEST(IoSolution, FileRoundTrip) {
  Solution solution;
  solution.num_parts = 4;
  solution.assignment = {3, 1, 0, 2};
  solution.cut = 0;
  const std::string path = ::testing::TempDir() + "/x.fpsol";
  write_solution_file(path, solution);
  const Solution got = read_solution_file(path);
  EXPECT_EQ(got.assignment, solution.assignment);
  EXPECT_THROW(read_solution_file("/nope.fpsol"), std::runtime_error);
}

}  // namespace
}  // namespace fixedpart::hg
