// Process-isolated execution (PR 8; ctest label: isolate): the
// svc::ProcessPool + fixedpart-worker supervision tree. Covers the clean
// path (a worker process produces the same deterministic result as the
// in-process runner), the crash taxonomy (abort -> WorkerCrashError,
// repeat crasher -> WorkerPoisonedError -> failed(crash) through
// run_supervised_job), crash-exactly-once retry in a fresh worker, the
// reaper's hang kill of a heartbeat-silent worker, cooperative budget
// truncation across the process boundary, worker-reported permanent
// errors rethrown as their original classes, and the deterministic
// respawn backoff. Fault hooks ride on FIXEDPART_WORKER_* env vars
// (tests/fault_inject.hpp ScopedEnv), never on spec fields, so job ids
// stay identical across isolation modes.
//
// The binary is ASan-certified via scripts/check.sh; it is excluded from
// TSan runs because the pool forks from a threaded test process, which
// TSan's runtime does not support.

#include "svc/process_pool.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fault_inject.hpp"
#include "obs/flight.hpp"
#include "obs/trace.hpp"
#include "obs/trace_wire.hpp"
#include "svc/executor.hpp"
#include "svc/job.hpp"
#include "util/deadline.hpp"
#include "util/errors.hpp"

#ifndef FIXEDPART_WORKER_BIN
#error "FIXEDPART_WORKER_BIN must point at the fixedpart-worker binary"
#endif

#ifdef __unix__

#include <fcntl.h>
#include <unistd.h>

namespace fixedpart::svc {
namespace {

namespace fs = std::filesystem;
using fixedpart::testing::ScopedEnv;

JobSpec make_spec(const std::string& id, std::uint64_t seed) {
  JobSpec spec;
  spec.id = id;
  spec.circuit = 1;
  spec.scale = "smoke";
  spec.starts = 1;
  spec.seed = seed;
  return spec;
}

ProcessPoolConfig base_config() {
  ProcessPoolConfig config;
  config.worker_path = FIXEDPART_WORKER_BIN;
  // Tests never really sleep through a backoff.
  config.sleep_fn = [](double) {};
  return config;
}

TEST(ProcessPool, CleanJobMatchesInProcessResult) {
  ProcessPool pool(base_config());
  const JobSpec spec = make_spec("clean-1", 11);
  const util::Deadline unlimited;

  const JobResult isolated = pool.attempt(spec, unlimited);
  const JobResult inproc = run_partition_job(spec, unlimited);
  // Determinism across the process boundary: the worker ran the same
  // engine on the same spec, so everything but wall time must agree.
  EXPECT_EQ(isolated.cut, inproc.cut);
  EXPECT_EQ(isolated.moves, inproc.moves);
  EXPECT_EQ(isolated.passes, inproc.passes);
  EXPECT_EQ(isolated.truncated, inproc.truncated);

  const ProcessPoolStats stats = pool.stats();
  EXPECT_EQ(stats.spawned, 1);
  EXPECT_EQ(stats.crashed, 0);
  EXPECT_EQ(stats.respawns, 0);
  EXPECT_GT(stats.rss_peak_kb, 0);
}

TEST(ProcessPool, SpawnSurvivesOccupiedLowParentFds) {
  // Regression: pipe() hands out the lowest free fds, so with fd 3
  // occupied in the parent (exactly what a test runner's inherited fds
  // produce) a pipe end used to land ON fd 4 and get closed by the
  // child's post-dup2 cleanup — every worker died with exit code 2 on
  // its first heartbeat. Pin both layouts: only-3 busy, only-4 busy.
  for (const int busy : {3, 4}) {
    const int devnull = ::open("/dev/null", O_RDWR);
    ASSERT_GE(devnull, 0);
    const int saved = ::fcntl(busy, F_DUPFD, 10);  // restore point if open
    ASSERT_EQ(::dup2(devnull, busy), busy);
    ::close(devnull);

    ProcessPool pool(base_config());
    const JobSpec spec = make_spec("fdlayout-" + std::to_string(busy), 11);
    const JobResult result = pool.attempt(spec, util::Deadline());
    EXPECT_GT(result.moves, 0);
    EXPECT_EQ(pool.stats().crashed, 0) << "busy fd " << busy;

    if (saved >= 0) {
      ::dup2(saved, busy);
      ::close(saved);
    } else {
      ::close(busy);
    }
  }
}

TEST(ProcessPool, CrashingWorkerThrowsThenPoisons) {
  ScopedEnv crash("FIXEDPART_WORKER_CRASH_SEED", "777");
  ProcessPoolConfig config = base_config();
  config.max_job_crashes = 2;
  ProcessPool pool(config);
  const JobSpec spec = make_spec("crasher-1", 777);
  const util::Deadline unlimited;

  // First crash: transient, the supervised loop would retry it.
  EXPECT_THROW(pool.attempt(spec, unlimited), WorkerCrashError);
  // Second crash of the SAME job: the circuit breaker trips.
  EXPECT_THROW(pool.attempt(spec, unlimited), WorkerPoisonedError);

  const ProcessPoolStats stats = pool.stats();
  EXPECT_EQ(stats.spawned, 2);
  EXPECT_EQ(stats.crashed, 2);
  EXPECT_EQ(stats.respawns, 1);  // the second spawn paid the crash streak
}

TEST(ProcessPool, CrashOnceJobSucceedsOnRetryInFreshWorker) {
  const std::string flag =
      (fs::temp_directory_path() /
       ("fp_crash_once_flag_" + std::to_string(::getpid())))
          .string();
  fs::remove(flag);
  ScopedEnv crash_once("FIXEDPART_WORKER_CRASH_ONCE_SEED", "888");
  ScopedEnv flag_env("FIXEDPART_WORKER_CRASH_FLAG", flag);
  ProcessPool pool(base_config());
  const JobSpec spec = make_spec("crash-once-1", 888);

  RetryPolicy retry;
  retry.max_attempts = 3;
  AttemptSlot slot;
  SupervisedHooks hooks;
  hooks.sleep_fn = [](double) {};
  const JobOutcome outcome =
      run_supervised_job(pool.runner(), spec, retry, slot, hooks);
  fs::remove(flag);

  // The first worker aborted after planting the flag; the retry ran in a
  // fresh worker and completed. Exactly the existing retry loop at work.
  EXPECT_EQ(outcome.status, JobStatus::kOk);
  EXPECT_EQ(outcome.attempts, 2);
  const ProcessPoolStats stats = pool.stats();
  EXPECT_EQ(stats.spawned, 2);
  EXPECT_EQ(stats.crashed, 1);
  EXPECT_EQ(stats.respawns, 1);
}

TEST(ProcessPool, RepeatCrasherIsPoisonedAsFailedCrash) {
  ScopedEnv crash("FIXEDPART_WORKER_CRASH_SEED", "999");
  ProcessPoolConfig config = base_config();
  config.max_job_crashes = 2;
  ProcessPool pool(config);
  const JobSpec spec = make_spec("poison-1", 999);

  RetryPolicy retry;
  retry.max_attempts = 10;  // the breaker, not attempt exhaustion, stops it
  AttemptSlot slot;
  SupervisedHooks hooks;
  hooks.sleep_fn = [](double) {};
  const JobOutcome outcome =
      run_supervised_job(pool.runner(), spec, retry, slot, hooks);

  EXPECT_EQ(outcome.status, JobStatus::kFailed);
  EXPECT_EQ(outcome.error, ErrorClass::kCrash);
  EXPECT_EQ(outcome.attempts, 2);  // one per allowed crash, then fail-fast
  EXPECT_FALSE(outcome.message.empty());
  EXPECT_EQ(pool.stats().crashed, 2);
}

TEST(ProcessPool, HeartbeatSilentWorkerIsHangKilled) {
  ScopedEnv stall("FIXEDPART_WORKER_STALL_SEED", "555");
  ProcessPoolConfig config = base_config();
  config.heartbeat_timeout_seconds = 0.3;
  ProcessPool pool(config);
  const JobSpec spec = make_spec("stall-1", 555);
  const util::Deadline unlimited;

  EXPECT_THROW(pool.attempt(spec, unlimited), WorkerCrashError);
  const ProcessPoolStats stats = pool.stats();
  EXPECT_EQ(stats.hang_kills, 1);
  EXPECT_EQ(stats.crashed, 1);
  EXPECT_EQ(stats.oom_kills, 0);  // our own SIGKILL must not count as OOM
}

TEST(ProcessPool, BudgetExpiryTruncatesCooperativelyAcrossTheBoundary) {
  ScopedEnv slow("FIXEDPART_WORKER_SLOW_MS", "30000");
  ProcessPool pool(base_config());
  JobSpec spec = make_spec("slow-1", 21);
  spec.budget_seconds = 0.2;  // the worker rebuilds this deadline itself

  const util::Deadline deadline = util::Deadline::after_seconds(10.0);
  const JobResult result = pool.attempt(spec, deadline);
  EXPECT_TRUE(result.truncated);
  EXPECT_EQ(pool.stats().crashed, 0);  // a degraded outcome is not a crash
}

TEST(ProcessPool, WorkerReportedInputErrorRethrownAsInputError) {
  ProcessPool pool(base_config());
  JobSpec spec = make_spec("badinput-1", 31);
  spec.instance = "/nonexistent/fp_no_such_instance.hgr";
  const util::Deadline unlimited;

  // The worker exits cleanly with a failed(input) outcome; the pool
  // rethrows the original class so run_supervised_job fails it fast
  // (permanent), exactly like the in-process path.
  EXPECT_THROW(pool.attempt(spec, unlimited), util::InputError);
  EXPECT_EQ(pool.stats().crashed, 0);
}

TEST(ProcessPool, RespawnBackoffIsDeterministic) {
  ScopedEnv crash("FIXEDPART_WORKER_CRASH_SEED", "666");
  const auto run_streak = [](std::vector<double>* delays) {
    ProcessPoolConfig config = base_config();
    config.max_job_crashes = 3;
    config.sleep_fn = [delays](double seconds) {
      delays->push_back(seconds);
    };
    ProcessPool pool(config);
    const JobSpec spec = make_spec("backoff-1", 666);
    const util::Deadline unlimited;
    for (int i = 0; i < 3; ++i) {
      try {
        pool.attempt(spec, unlimited);
      } catch (const WorkerCrashError&) {
      } catch (const WorkerPoisonedError&) {
      }
    }
  };
  std::vector<double> first;
  std::vector<double> second;
  run_streak(&first);
  run_streak(&second);
  // Crash-streak backoff before the 2nd and 3rd spawns, growing, capped,
  // and bit-identical across runs (jitter is derived from the job id and
  // the streak, not from wall clock or a global RNG).
  ASSERT_EQ(first.size(), 2u);
  EXPECT_GT(first[0], 0.0);
  EXPECT_GT(first[1], first[0]);
  EXPECT_EQ(first, second);
}

TEST(ProcessPool, StatsJsonIsACompleteObject) {
  ProcessPool pool(base_config());
  const std::string json = pool.stats_json();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  for (const char* key :
       {"spawned", "crashed", "oom_kills", "respawns", "hang_kills",
        "rss_peak_kb"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(ProcessPool, ResolveWorkerPathValidates) {
  EXPECT_THROW(resolve_worker_path("/nonexistent/fp_worker"),
               util::InputError);
  EXPECT_EQ(resolve_worker_path(FIXEDPART_WORKER_BIN),
            std::string(FIXEDPART_WORKER_BIN));
}

TEST(ProcessPool, ConstructorRejectsBadConfig) {
  ProcessPoolConfig config = base_config();
  config.worker_path = "/nonexistent/fp_worker";
  EXPECT_THROW(ProcessPool pool(config), util::InputError);
  ProcessPoolConfig zero = base_config();
  zero.max_job_crashes = 0;
  EXPECT_THROW(ProcessPool pool(zero), std::invalid_argument);
}

// --- span streaming over the 'T' frame (PR 10) -----------------------------

#if FIXEDPART_OBS_ENABLED

TEST(ProcessPool, WorkerSpansMergeTimeAlignedAndPidTagged) {
  ProcessPool pool(base_config());
  const JobSpec spec = make_spec("traced-1", 11);
  obs::SpanBuffer spans;
  // The same arrangement run_supervised_job makes: the attendant inherits
  // this thread's context, so worker spans land in the job's buffer.
  obs::ScopedTraceContext context(obs::trace_id_for(spec.id), &spans);
  const std::int64_t before_ns = obs::trace_now_ns();
  const JobResult result = pool.attempt(spec, util::Deadline());
  const std::int64_t after_ns = obs::trace_now_ns();
  EXPECT_GT(result.moves, 0);

  const std::vector<obs::TraceEvent> events = spans.events();
  ASSERT_FALSE(events.empty());
  bool saw_marker = false;
  bool saw_engine_span = false;
  for (const obs::TraceEvent& event : events) {
    // Every merged span is tagged with the worker's real pid (never 0 =
    // local) and the job's trace id.
    EXPECT_NE(event.pid, 0u);
    EXPECT_EQ(event.trace_id, obs::trace_id_for(spec.id));
    // Time alignment: the estimated epoch offset never undershoots the
    // true one (it is a min over one-way transit times), so every
    // rebased span lands inside the parent-side attempt window.
    EXPECT_GE(event.start_ns, before_ns);
    EXPECT_LE(event.start_ns, after_ns);
    if (std::string(event.name) == "worker.start") saw_marker = true;
    if (std::string(event.name).rfind("ml.", 0) == 0) saw_engine_span = true;
  }
  EXPECT_TRUE(saw_marker);
  EXPECT_TRUE(saw_engine_span);
}

TEST(ProcessPool, MaliciousSpanFramesCorruptOnlyTheirOwnTrace) {
  ScopedEnv bad("FIXEDPART_WORKER_BAD_SPANS_SEED", "555");
  ProcessPool pool(base_config());

  // The hostile job: floods the parent with corrupt 'T' frames, then
  // runs normally. The attempt must still succeed, and the garbage is
  // confined to this job's buffer (bounded names, counted drops).
  const JobSpec hostile = make_spec("hostile-1", 555);
  obs::SpanBuffer hostile_spans;
  {
    obs::ScopedTraceContext context(obs::trace_id_for(hostile.id),
                                    &hostile_spans);
    const JobResult result = pool.attempt(hostile, util::Deadline());
    EXPECT_GT(result.moves, 0);
  }
  EXPECT_GT(hostile_spans.dropped(), 0u);  // remote drops + malformed lines
  for (const obs::TraceEvent& event : hostile_spans.events()) {
    EXPECT_LE(std::string(event.name).size(), obs::kMaxWireNameBytes);
  }

  // A clean job through the same pool afterwards: its trace contains
  // exactly its own worker's spans, none of the hostile leftovers.
  const JobSpec clean = make_spec("clean-after-hostile", 11);
  obs::SpanBuffer clean_spans;
  {
    obs::ScopedTraceContext context(obs::trace_id_for(clean.id),
                                    &clean_spans);
    const JobResult result = pool.attempt(clean, util::Deadline());
    EXPECT_GT(result.moves, 0);
  }
  EXPECT_EQ(clean_spans.dropped(), 0u);
  bool saw_marker = false;
  for (const obs::TraceEvent& event : clean_spans.events()) {
    EXPECT_EQ(event.trace_id, obs::trace_id_for(clean.id));
    const std::string name = event.name;
    EXPECT_EQ(name.find("future"), std::string::npos);
    EXPECT_EQ(name.find("torn"), std::string::npos);
    if (name == "worker.start") saw_marker = true;
  }
  EXPECT_TRUE(saw_marker);
  EXPECT_EQ(pool.stats().crashed, 0);
}

TEST(ProcessPool, CrashedWorkerLeavesFlightDumpNamingTheJob) {
  const fs::path dir =
      fs::temp_directory_path() / "fp_pool_flight_crash_dump";
  fs::remove_all(dir);
  ScopedEnv crash("FIXEDPART_WORKER_CRASH_SEED", "777");
  ProcessPoolConfig config = base_config();
  config.flight_dir = dir.string();
  config.max_job_crashes = 2;
  ProcessPool pool(config);
  const JobSpec spec = make_spec("crash-dump-1", 777);
  EXPECT_THROW(pool.attempt(spec, util::Deadline()), WorkerCrashError);
  const fs::path expected = dir / ("crash-" + spec.id + ".json");
  ASSERT_TRUE(fs::exists(expected)) << expected;
  std::ifstream in(expected);
  std::stringstream content;
  content << in.rdbuf();
  const std::string dump = content.str();
  EXPECT_NE(dump.find("\"reason\": \"crash\""), std::string::npos);
  EXPECT_NE(dump.find("\"job\": \"" + spec.id + "\""), std::string::npos);
  EXPECT_NE(dump.find("\"phase\""), std::string::npos);
  EXPECT_NE(dump.find("\"entries\""), std::string::npos);
  fs::remove_all(dir);
}

#endif  // FIXEDPART_OBS_ENABLED

}  // namespace
}  // namespace fixedpart::svc

#endif  // __unix__
