// End-to-end system tests: the full pipeline a downstream user runs —
// generate a placed circuit, derive the Sec. IV benchmark family, write
// every on-disk format, read them back, partition, and grade the result.

#include <gtest/gtest.h>

#include <string>

#include "gen/derive.hpp"
#include "gen/netlist_gen.hpp"
#include "hg/io_bookshelf.hpp"
#include "hg/io_hmetis.hpp"
#include "hg/io_solution.hpp"
#include "ml/multilevel.hpp"
#include "part/report.hpp"
#include "util/rng.hpp"

namespace fixedpart {
namespace {

gen::GeneratedCircuit pipeline_circuit() {
  gen::CircuitSpec spec;
  spec.name = "sys";
  spec.num_cells = 500;
  spec.num_nets = 560;
  spec.num_pads = 20;
  spec.seed = 55;
  return gen::generate_circuit(spec);
}

TEST(System, GenerateDeriveWriteReadPartitionGrade) {
  const auto circuit = pipeline_circuit();
  const auto family = gen::derive_family(circuit, 2.0);
  ASSERT_EQ(family.size(), 8u);
  // Pick the half-die instance (terminal-rich but nontrivial).
  const gen::DerivedInstance& derived = family[2];  // B_V

  // Write and read back the self-contained format.
  const std::string path = ::testing::TempDir() + "/sys_instance.fpb";
  hg::write_fpb_file(path, derived.instance);
  const hg::BenchmarkInstance loaded = hg::read_fpb_file(path);
  ASSERT_EQ(loaded.graph.num_vertices(),
            derived.instance.graph.num_vertices());
  ASSERT_EQ(loaded.fixed.count_fixed(), derived.instance.fixed.count_fixed());

  // Partition the loaded instance.
  const auto balance = part::BalanceConstraint::from_spec(
      loaded.graph, loaded.num_parts, loaded.balance);
  const ml::MultilevelPartitioner partitioner(loaded.graph, loaded.fixed,
                                              balance);
  util::Rng rng(7);
  const auto result = partitioner.best_of(4, rng, ml::MultilevelConfig{});

  // Grade with the one-call report.
  const part::SolutionReport report = part::evaluate_solution(
      loaded.graph, loaded.fixed, balance, result.assignment);
  EXPECT_TRUE(report.valid());
  EXPECT_EQ(report.cut, result.cut);
  EXPECT_EQ(report.fixed_violations, 0);
  EXPECT_LE(report.imbalance_pct[0], 2.0 + 1e-9);

  // Persist and re-verify the solution file.
  hg::Solution solution;
  solution.num_parts = loaded.num_parts;
  solution.cut = result.cut;
  solution.assignment = result.assignment;
  const std::string sol_path = ::testing::TempDir() + "/sys_solution.fpsol";
  hg::write_solution_file(sol_path, solution);
  EXPECT_NO_THROW(hg::read_solution_file_checked(sol_path, loaded.graph));
}

TEST(System, HmetisInteropPathProducesSameInstance) {
  const auto circuit = pipeline_circuit();
  const auto family = gen::derive_family(circuit, 2.0);
  const gen::DerivedInstance& derived = family[4];  // C_V

  const std::string hgr = ::testing::TempDir() + "/sys_interop.hgr";
  const std::string fix = ::testing::TempDir() + "/sys_interop.fix";
  hg::write_hmetis_file(hgr, derived.instance.graph);
  hg::write_fix_file(fix, derived.instance.fixed);

  const hg::Hypergraph graph = hg::read_hmetis_file(hgr);
  const hg::FixedAssignment fixed =
      hg::read_fix_file(fix, graph.num_vertices(), 2);
  ASSERT_EQ(graph.num_vertices(), derived.instance.graph.num_vertices());
  ASSERT_EQ(fixed.count_fixed(), derived.instance.fixed.count_fixed());

  // The two load paths must describe the same partitioning problem: the
  // same partitioner stream yields the same cut.
  const auto balance = part::BalanceConstraint::relative(graph, 2, 2.0);
  const ml::MultilevelPartitioner via_hmetis(graph, fixed, balance);
  const auto balance2 = part::BalanceConstraint::relative(
      derived.instance.graph, 2, 2.0);
  const ml::MultilevelPartitioner direct(derived.instance.graph,
                                         derived.instance.fixed, balance2);
  util::Rng rng_a(9);
  util::Rng rng_b(9);
  EXPECT_EQ(via_hmetis.run(rng_a, ml::MultilevelConfig{}).cut,
            direct.run(rng_b, ml::MultilevelConfig{}).cut);
}

TEST(System, TerminalRichInstancesSolveInOneStart) {
  // The paper's headline, as a regression guard: on a terminal-dominated
  // derived instance (>= 30% fixed), a single multilevel start must land
  // within 10% of an 8-start result.
  const auto circuit = pipeline_circuit();
  const auto family = gen::derive_family(circuit, 2.0);
  const gen::DerivedInstance& derived = family[6];  // D_V: mostly terminals
  const double fixed_share =
      static_cast<double>(derived.instance.fixed.count_fixed()) /
      static_cast<double>(derived.instance.graph.num_vertices());
  ASSERT_GT(fixed_share, 0.3);

  const auto balance = part::BalanceConstraint::relative(
      derived.instance.graph, 2, 2.0);
  const ml::MultilevelPartitioner partitioner(
      derived.instance.graph, derived.instance.fixed, balance);
  util::Rng rng(11);
  double one_start_avg = 0.0;
  const int trials = 5;
  hg::Weight best8 = std::numeric_limits<hg::Weight>::max();
  for (int t = 0; t < trials; ++t) {
    hg::Weight best = std::numeric_limits<hg::Weight>::max();
    for (int s = 0; s < 8; ++s) {
      const auto cut = partitioner.run(rng, ml::MultilevelConfig{}).cut;
      best = std::min(best, cut);
      if (s == 0) one_start_avg += static_cast<double>(cut);
    }
    best8 = std::min(best8, best);
  }
  one_start_avg /= trials;
  EXPECT_LE(one_start_avg, 1.10 * static_cast<double>(best8) + 2.0);
}

}  // namespace
}  // namespace fixedpart
