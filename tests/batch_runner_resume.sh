#!/usr/bin/env bash
# CLI-level crash/resume check for batch_runner (ctest label: svc).
#
# Generates a demo manifest, runs it with --halt-after (the simulated
# kill -9: in-flight results are discarded, only checkpointed outcomes
# survive), resumes, and requires the resumed fleet's canonical journal
# to be byte-identical to an uninterrupted run's.
#
# Usage: batch_runner_resume.sh /path/to/batch_runner
set -euo pipefail

runner=${1:?usage: batch_runner_resume.sh /path/to/batch_runner}
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
cd "$workdir"

"$runner" --gen-manifest=jobs.jsonl --jobs=6 > /dev/null

# Crash after 2 checkpointed outcomes. Exit code 1 = incomplete fleet.
# --metrics-out rides along: the periodic exporter plus the final tick
# must leave a readable snapshot behind even though the fleet died early.
status=0
"$runner" --manifest=jobs.jsonl --journal=run.jsonl --workers=2 \
  --halt-after=2 --metrics-out=metrics.json --metrics-interval=0.1 \
  --quiet > /dev/null || status=$?
[ "$status" -eq 1 ] || { echo "FAIL: halted run exited $status, want 1"; exit 1; }

lines=$(wc -l < run.jsonl)
[ "$lines" -eq 2 ] || { echo "FAIL: journal has $lines outcomes, want 2"; exit 1; }

[ -s metrics.json ] || { echo "FAIL: metrics.json missing after halted run"; exit 1; }
grep -q '"counters"' metrics.json || { echo "FAIL: metrics.json malformed after halted run"; exit 1; }
# (-f, not -s: under FIXEDPART_OBS=OFF the exposition is legitimately empty)
[ -f metrics.json.prom ] || { echo "FAIL: metrics.json.prom missing after halted run"; exit 1; }

# Crash artifacts around journal compaction must not derail a resume:
# a stale .tmp sibling (died between write and rename, or between rename
# and the directory fsync) and a torn trailing line are both recovered —
# the tmp is simply replaced by the next compaction, the torn line is
# dropped and its job re-run.
printf 'garbage from a dead compaction' > run.jsonl.tmp
printf '{"id": "job5", "status": "ok", "err' >> run.jsonl

# Resume completes the fleet and exits 0.
"$runner" --manifest=jobs.jsonl --journal=run.jsonl --workers=2 \
  --resume --quiet --canonical-out=resumed.txt > /dev/null

lines=$(wc -l < run.jsonl)
[ "$lines" -eq 6 ] || { echo "FAIL: merged journal has $lines outcomes, want 6"; exit 1; }
for j in 0 1 2 3 4 5; do
  n=$(grep -c "\"job$j\"" run.jsonl)
  [ "$n" -eq 1 ] || { echo "FAIL: job$j appears $n times in journal, want 1"; exit 1; }
done

# Uninterrupted reference fleet: canonical journals must match exactly.
"$runner" --manifest=jobs.jsonl --journal=clean.jsonl --workers=1 \
  --quiet --canonical-out=clean.txt > /dev/null
diff -u resumed.txt clean.txt || { echo "FAIL: resumed fleet diverges from clean run"; exit 1; }

# --resume without --journal is a usage error (exit 2).
status=0
"$runner" --manifest=jobs.jsonl --resume --quiet > /dev/null 2>&1 || status=$?
[ "$status" -eq 2 ] || { echo "FAIL: --resume without --journal exited $status, want 2"; exit 1; }

echo "PASS: batch_runner crash/resume"
