#include "part/fm.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hg/builder.hpp"
#include "part/initial.hpp"
#include "util/rng.hpp"

namespace fixedpart::part {
namespace {

/// Two 4-cliques (as 2-pin nets) joined by a single bridge net: the
/// optimal bisection cuts exactly the bridge.
hg::Hypergraph two_clusters() {
  hg::HypergraphBuilder b;
  for (int i = 0; i < 8; ++i) b.add_vertex(1);
  auto clique = [&](int base) {
    for (int i = 0; i < 4; ++i) {
      for (int j = i + 1; j < 4; ++j) {
        b.add_net(std::vector<hg::VertexId>{base + i, base + j});
      }
    }
  };
  clique(0);
  clique(4);
  b.add_net(std::vector<hg::VertexId>{0, 4});
  return b.build();
}

hg::Hypergraph random_graph(util::Rng& rng, int n, int nets,
                            Weight max_area = 4) {
  hg::HypergraphBuilder b;
  for (int i = 0; i < n; ++i) {
    b.add_vertex(1 + static_cast<Weight>(rng.next_below(
                         static_cast<std::uint64_t>(max_area))));
  }
  for (int e = 0; e < nets; ++e) {
    std::vector<hg::VertexId> pins;
    const int degree = 2 + static_cast<int>(rng.next_below(4));
    for (int d = 0; d < degree; ++d) {
      pins.push_back(static_cast<hg::VertexId>(
          rng.next_below(static_cast<std::uint64_t>(n))));
    }
    b.add_net(pins);
  }
  return b.build();
}

TEST(FmBipartitioner, FindsOptimalCutOnTwoClusters) {
  const hg::Hypergraph g = two_clusters();
  const hg::FixedAssignment fixed(g.num_vertices(), 2);
  // Tolerance must admit a 5/3 intermediate state: FM only ever moves one
  // vertex at a time, so with max side weight 4 a perfect 4/4 split would
  // deadlock (no single move stays feasible) — the toy-instance version of
  // the paper's "relatively overconstrained" effect.
  const auto balance = BalanceConstraint::relative(g, 2, 30.0);
  FmBipartitioner fm(g, fixed, balance);

  // Worst start: clusters interleaved across the sides.
  PartitionState state(g, 2);
  for (hg::VertexId v = 0; v < 8; ++v) state.assign(v, v % 2);
  util::Rng rng(1);
  const auto result = fm.refine(state, rng, FmConfig{});
  EXPECT_EQ(result.final_cut, 1);
  EXPECT_EQ(state.cut(), 1);
  EXPECT_LE(result.final_cut, result.initial_cut);
}

TEST(FmBipartitioner, FixedVerticesNeverMove) {
  const hg::Hypergraph g = two_clusters();
  hg::FixedAssignment fixed(g.num_vertices(), 2);
  fixed.fix(0, 0);
  fixed.fix(7, 1);
  const auto balance = BalanceConstraint::relative(g, 2, 10.0);
  FmBipartitioner fm(g, fixed, balance);
  EXPECT_EQ(fm.num_movable(), 6);

  PartitionState state(g, 2);
  util::Rng rng(2);
  random_feasible_assignment(state, fixed, balance, rng);
  fm.refine(state, rng, FmConfig{});
  EXPECT_EQ(state.part_of(0), 0);
  EXPECT_EQ(state.part_of(7), 1);
  check_respects_fixed(state, fixed);
}

TEST(FmBipartitioner, OrRestrictedVertexIsMovableInBipartition) {
  const hg::Hypergraph g = two_clusters();
  hg::FixedAssignment fixed(g.num_vertices(), 2);
  fixed.restrict_to(3, 0b11);  // allowed on both sides == free
  const auto balance = BalanceConstraint::relative(g, 2, 10.0);
  const FmBipartitioner fm(g, fixed, balance);
  EXPECT_EQ(fm.num_movable(), 8);
}

TEST(FmBipartitioner, AllVerticesFixedMeansNoMoves) {
  const hg::Hypergraph g = two_clusters();
  hg::FixedAssignment fixed(g.num_vertices(), 2);
  for (hg::VertexId v = 0; v < 8; ++v) fixed.fix(v, v < 4 ? 0 : 1);
  const auto balance = BalanceConstraint::relative(g, 2, 10.0);
  FmBipartitioner fm(g, fixed, balance);
  EXPECT_EQ(fm.num_movable(), 0);

  PartitionState state(g, 2);
  for (hg::VertexId v = 0; v < 8; ++v) state.assign(v, v < 4 ? 0 : 1);
  util::Rng rng(3);
  const auto result = fm.refine(state, rng, FmConfig{});
  EXPECT_EQ(result.total_moves, 0);
  EXPECT_EQ(result.final_cut, result.initial_cut);
}

TEST(FmBipartitioner, RefineRejectsIncompleteState) {
  const hg::Hypergraph g = two_clusters();
  const hg::FixedAssignment fixed(g.num_vertices(), 2);
  const auto balance = BalanceConstraint::relative(g, 2, 10.0);
  FmBipartitioner fm(g, fixed, balance);
  PartitionState state(g, 2);
  state.assign(0, 0);
  util::Rng rng(4);
  EXPECT_THROW(fm.refine(state, rng, FmConfig{}), std::invalid_argument);
}

TEST(FmBipartitioner, RequiresTwoParts) {
  const hg::Hypergraph g = two_clusters();
  const hg::FixedAssignment fixed4(g.num_vertices(), 4);
  const auto balance4 = BalanceConstraint::relative(g, 4, 10.0);
  EXPECT_THROW(FmBipartitioner(g, fixed4, balance4), std::invalid_argument);
}

TEST(FmBipartitioner, DeterministicGivenSeed) {
  util::Rng gen(11);
  const hg::Hypergraph g = random_graph(gen, 60, 120);
  const hg::FixedAssignment fixed(g.num_vertices(), 2);
  const auto balance = BalanceConstraint::relative(g, 2, 5.0);

  auto run_once = [&](std::uint64_t seed) {
    FmBipartitioner fm(g, fixed, balance);
    PartitionState state(g, 2);
    util::Rng rng(seed);
    random_feasible_assignment(state, fixed, balance, rng);
    fm.refine(state, rng, FmConfig{});
    return std::vector<hg::PartitionId>(state.assignment().begin(),
                                        state.assignment().end());
  };
  EXPECT_EQ(run_once(99), run_once(99));
  // CLIP with the same seed is a different (but deterministic) trajectory.
  EXPECT_EQ(run_once(100), run_once(100));
}

TEST(FmBipartitioner, PassCutoffLimitsMoves) {
  util::Rng gen(12);
  const hg::Hypergraph g = random_graph(gen, 100, 200);
  const hg::FixedAssignment fixed(g.num_vertices(), 2);
  const auto balance = BalanceConstraint::relative(g, 2, 5.0);
  FmBipartitioner fm(g, fixed, balance);

  PartitionState state(g, 2);
  util::Rng rng(5);
  random_feasible_assignment(state, fixed, balance, rng);

  FmConfig config;
  config.pass_cutoff = 0.10;
  const auto result = fm.refine(state, rng, config);
  ASSERT_GE(result.pass_records.size(), 1u);
  // First pass is exempt from the cutoff.
  for (std::size_t p = 1; p < result.pass_records.size(); ++p) {
    EXPECT_LE(result.pass_records[p].moves_performed,
              std::max(1, result.pass_records[p].movable / 10 + 1));
  }
}

TEST(FmBipartitioner, CutoffOnFirstPassWhenRequested) {
  util::Rng gen(13);
  const hg::Hypergraph g = random_graph(gen, 100, 200);
  const hg::FixedAssignment fixed(g.num_vertices(), 2);
  const auto balance = BalanceConstraint::relative(g, 2, 5.0);
  FmBipartitioner fm(g, fixed, balance);

  PartitionState state(g, 2);
  util::Rng rng(6);
  random_feasible_assignment(state, fixed, balance, rng);
  FmConfig config;
  config.pass_cutoff = 0.05;
  config.cutoff_first_pass = true;
  const auto result = fm.refine(state, rng, config);
  EXPECT_LE(result.pass_records[0].moves_performed,
            std::max(1, result.pass_records[0].movable / 20 + 1));
}

TEST(FmBipartitioner, FifoFindsOptimalCutOnTwoClusters) {
  const hg::Hypergraph g = two_clusters();
  const hg::FixedAssignment fixed(g.num_vertices(), 2);
  const auto balance = BalanceConstraint::relative(g, 2, 30.0);
  FmBipartitioner fm(g, fixed, balance);
  PartitionState state(g, 2);
  for (hg::VertexId v = 0; v < 8; ++v) state.assign(v, v % 2);
  util::Rng rng(14);
  FmConfig config;
  config.policy = SelectionPolicy::kFifo;
  const auto result = fm.refine(state, rng, config);
  EXPECT_EQ(result.final_cut, 1);
}

TEST(FmBipartitioner, PoliciesDivergeButAllImprove) {
  util::Rng gen(15);
  const hg::Hypergraph g = random_graph(gen, 150, 300);
  const hg::FixedAssignment fixed(g.num_vertices(), 2);
  const auto balance = BalanceConstraint::relative(g, 2, 5.0);
  FmBipartitioner fm(g, fixed, balance);
  for (const SelectionPolicy policy :
       {SelectionPolicy::kLifo, SelectionPolicy::kFifo,
        SelectionPolicy::kClip}) {
    PartitionState state(g, 2);
    util::Rng rng(99);
    random_feasible_assignment(state, fixed, balance, rng);
    const Weight initial = state.cut();
    FmConfig config;
    config.policy = policy;
    const auto result = fm.refine(state, rng, config);
    EXPECT_LT(result.final_cut, initial);
    EXPECT_EQ(state.cut(), state.recompute_cut());
  }
}

// The delta-update rules are the heart of FM; run the engine with the
// self-check that recomputes every unlocked vertex's true gain after every
// single move and compares it to the bucket key.
class FmGainInvariant
    : public ::testing::TestWithParam<std::tuple<std::uint64_t,
                                                 SelectionPolicy>> {};

TEST_P(FmGainInvariant, KeysTrackTrueGainsMoveByMove) {
  const auto [seed, policy] = GetParam();
  util::Rng gen(seed);
  const hg::Hypergraph g = random_graph(gen, 60, 140);
  hg::FixedAssignment fixed(g.num_vertices(), 2);
  for (hg::VertexId v = 0; v < 10; ++v) {
    fixed.fix(v, static_cast<hg::PartitionId>(gen.next_below(2)));
  }
  const auto balance = BalanceConstraint::relative(g, 2, 10.0);
  FmBipartitioner fm(g, fixed, balance);
  PartitionState state(g, 2);
  util::Rng rng(seed ^ 0x9a1);
  random_feasible_assignment(state, fixed, balance, rng);
  FmConfig config;
  config.policy = policy;
  config.check_invariants = true;
  EXPECT_NO_THROW(fm.refine(state, rng, config));
}

INSTANTIATE_TEST_SUITE_P(
    Policies, FmGainInvariant,
    ::testing::Combine(::testing::Values(61, 62, 63),
                       ::testing::Values(SelectionPolicy::kLifo,
                                         SelectionPolicy::kFifo,
                                         SelectionPolicy::kClip)));

TEST(FmBipartitioner, MultiResourceBalanceRespected) {
  util::Rng gen(16);
  hg::HypergraphBuilder b(2);
  for (int i = 0; i < 60; ++i) {
    const Weight w[2] = {1 + static_cast<Weight>(gen.next_below(3)),
                         1 + static_cast<Weight>(gen.next_below(5))};
    b.add_vertex(std::span<const Weight>(w, 2));
  }
  for (int e = 0; e < 120; ++e) {
    std::vector<hg::VertexId> pins;
    for (int d = 0; d < 3; ++d) {
      pins.push_back(static_cast<hg::VertexId>(gen.next_below(60)));
    }
    b.add_net(pins);
  }
  const hg::Hypergraph g = b.build();
  const hg::FixedAssignment fixed(g.num_vertices(), 2);
  const auto balance = BalanceConstraint::relative(g, 2, 15.0);
  FmBipartitioner fm(g, fixed, balance);
  PartitionState state(g, 2);
  util::Rng rng(17);
  random_feasible_assignment(state, fixed, balance, rng);
  const Weight initial = state.cut();
  fm.refine(state, rng, FmConfig{});
  EXPECT_LE(state.cut(), initial);
  // Both resources stay within their capacities.
  EXPECT_TRUE(balance.satisfied(state.part_weights()));
  for (int r = 0; r < 2; ++r) {
    for (hg::PartitionId p = 0; p < 2; ++p) {
      EXPECT_LE(state.part_weight(p, r), balance.max_weight(p, r));
    }
  }
}

TEST(FmBipartitioner, PassRecordWastedFraction) {
  PassRecord rec;
  rec.moves_performed = 100;
  rec.best_prefix = 25;
  EXPECT_DOUBLE_EQ(rec.wasted_fraction(), 0.75);
  PassRecord empty;
  EXPECT_DOUBLE_EQ(empty.wasted_fraction(), 0.0);
}

struct FmPropertyParam {
  std::uint64_t seed;
  int vertices;
  int nets;
  double tolerance;
  SelectionPolicy policy;
  double cutoff;
  double fixed_fraction;
};

class FmProperty : public ::testing::TestWithParam<FmPropertyParam> {};

TEST_P(FmProperty, InvariantsHold) {
  const auto param = GetParam();
  util::Rng gen(param.seed);
  const hg::Hypergraph g = random_graph(gen, param.vertices, param.nets);

  hg::FixedAssignment fixed(g.num_vertices(), 2);
  const auto fixed_count = static_cast<hg::VertexId>(
      param.fixed_fraction * param.vertices);
  for (hg::VertexId i = 0; i < fixed_count; ++i) {
    fixed.fix(i, static_cast<hg::PartitionId>(gen.next_below(2)));
  }
  const auto balance = BalanceConstraint::relative(g, 2, param.tolerance);

  FmBipartitioner fm(g, fixed, balance);
  PartitionState state(g, 2);
  util::Rng rng(param.seed ^ 0xabcdef);
  random_feasible_assignment(state, fixed, balance, rng);
  const Weight initial = state.cut();
  ASSERT_TRUE(balance.satisfied(state.part_weights()));

  FmConfig config;
  config.policy = param.policy;
  config.pass_cutoff = param.cutoff;
  const auto result = fm.refine(state, rng, config);

  // 1. Monotone improvement at the run level.
  EXPECT_LE(result.final_cut, initial);
  EXPECT_EQ(result.initial_cut, initial);
  // 2. Reported cut matches the state and a from-scratch recomputation.
  EXPECT_EQ(result.final_cut, state.cut());
  EXPECT_EQ(state.cut(), state.recompute_cut());
  // 3. Balance is preserved.
  EXPECT_TRUE(balance.satisfied(state.part_weights()));
  // 4. Fixed vertices are untouched.
  check_respects_fixed(state, fixed);
  // 5. Pass records are self-consistent.
  for (const auto& rec : result.pass_records) {
    EXPECT_LE(rec.best_prefix, rec.moves_performed);
    EXPECT_LE(rec.moves_performed, rec.movable);
    EXPECT_LE(rec.cut_best, rec.cut_before);
  }
  // 6. The last pass never improves (that is why refinement stopped),
  //    unless the pass cap was hit.
  if (result.passes < config.max_passes && !result.pass_records.empty()) {
    EXPECT_EQ(result.pass_records.back().cut_best,
              result.pass_records.back().cut_before);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FmProperty,
    ::testing::Values(
        FmPropertyParam{21, 40, 80, 10.0, SelectionPolicy::kLifo, 1.0, 0.0},
        FmPropertyParam{22, 40, 80, 10.0, SelectionPolicy::kClip, 1.0, 0.0},
        FmPropertyParam{41, 40, 80, 10.0, SelectionPolicy::kFifo, 1.0, 0.0},
        FmPropertyParam{42, 80, 160, 5.0, SelectionPolicy::kFifo, 0.25, 0.2},
        FmPropertyParam{43, 120, 300, 2.0, SelectionPolicy::kFifo, 1.0, 0.4},
        FmPropertyParam{23, 80, 160, 5.0, SelectionPolicy::kLifo, 1.0, 0.2},
        FmPropertyParam{24, 80, 160, 5.0, SelectionPolicy::kClip, 1.0, 0.2},
        FmPropertyParam{25, 80, 160, 2.0, SelectionPolicy::kLifo, 0.25, 0.3},
        FmPropertyParam{26, 80, 160, 2.0, SelectionPolicy::kClip, 0.25, 0.3},
        FmPropertyParam{27, 120, 300, 2.0, SelectionPolicy::kLifo, 0.05, 0.5},
        FmPropertyParam{28, 60, 200, 10.0, SelectionPolicy::kLifo, 0.5, 0.1},
        FmPropertyParam{29, 200, 400, 2.0, SelectionPolicy::kClip, 1.0, 0.4},
        FmPropertyParam{30, 30, 90, 20.0, SelectionPolicy::kLifo, 1.0, 0.0}));

}  // namespace
}  // namespace fixedpart::part
