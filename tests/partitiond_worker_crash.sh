#!/usr/bin/env bash
# End-to-end worker-crash battery for partitiond --isolation=process
# (ctest labels: isolate, serve). Drives the daemon over bash's /dev/tcp
# (curl-free) through the process-supervision tree:
#
#   1. kill -9 a worker process mid-job: the daemon keeps serving, the
#      job is retried in a fresh worker and completes ok;
#   2. a crash-exactly-once job (FIXEDPART_WORKER_CRASH_ONCE_SEED +
#      flag file) dies on its first worker and succeeds on the retry;
#   3. a job that crashes every worker is poisoned as failed(crash)
#      after max_job_crashes — the circuit breaker — while the daemon
#      stays healthy;
#   4. (gated on `fixedpart-worker --selfcheck` under ulimit -v: ASan/
#      TSan shadow reservations make RLIMIT_AS unusable) a memory-hog
#      job under --rlimit-as-mb is contained and classified OOM without
#      killing the daemon;
#   5. the same crash-free fleet run under --isolation=thread and
#      --isolation=process leaves byte-identical journals once the
#      timing fields are normalized out;
#   6. (woven through 1) per-job distributed tracing: killing a live
#      worker mid-job leaves a flight-recorder dump under --flight-dir
#      naming the job and its last recorded phase, and the finished job's
#      GET /jobs/<id>/trace merges time-aligned worker spans (real worker
#      pid) with the daemon's own supervision spans (pid 1).
#
# Usage: partitiond_worker_crash.sh /path/to/partitiond /path/to/fixedpart-worker
set -euo pipefail

daemon=${1:?usage: partitiond_worker_crash.sh /path/to/partitiond /path/to/fixedpart-worker}
worker=${2:?usage: partitiond_worker_crash.sh /path/to/partitiond /path/to/fixedpart-worker}
workdir=$(mktemp -d)
cleanup() {
  [ -n "${daemon_pid:-}" ] && kill -9 "$daemon_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT
cd "$workdir"

# start_daemon [extra partitiond flags...]; fault hooks ride on exported
# FIXEDPART_WORKER_* env vars, which the daemon's workers inherit.
start_daemon() {
  rm -f port.txt
  "$daemon" --listen=0 --port-file=port.txt --journal=jobs.journal \
    --spool-dir=spool "$@" > daemon.log 2> daemon.err &
  daemon_pid=$!
  port=""
  for _ in $(seq 1 200); do
    # Under FIXEDPART_OBS=OFF the HTTP endpoint compiles out: nothing to
    # probe, trivially pass (same convention as partitiond_restart.sh).
    if grep -q "FIXEDPART_OBS=OFF" daemon.log 2>/dev/null; then
      wait "$daemon_pid"
      daemon_pid=""
      echo "PASS: partitiond worker crash (endpoint compiled out, OBS=OFF)"
      exit 0
    fi
    [ -s port.txt ] && { port=$(head -n1 port.txt); break; }
    sleep 0.05
  done
  [ -n "$port" ] || { echo "FAIL: daemon never wrote port.txt"; cat daemon.log daemon.err; exit 1; }
}

stop_daemon() {
  kill -TERM "$daemon_pid"
  local rc=0
  wait "$daemon_pid" || rc=$?
  daemon_pid=""
  [ "$rc" = 0 ] || { echo "FAIL: drain exited $rc"; cat daemon.log daemon.err; exit 1; }
}

# One HTTP exchange via /dev/tcp; the full response lands in $reply.
req() {
  local method=$1 path=$2 body=${3:-}
  exec 3<>"/dev/tcp/127.0.0.1/$port"
  printf '%s %s HTTP/1.1\r\nHost: 127.0.0.1\r\nContent-Length: %s\r\nConnection: close\r\n\r\n%s' \
    "$method" "$path" "${#body}" "$body" >&3
  reply=$(cat <&3)
  exec 3<&-
}

reply_id() {
  echo "$reply" | sed -n 's/.*"id": "\([0-9a-f]\{32\}\)".*/\1/p' | head -n1
}

submit() {
  local seed=$1
  req POST "/partition?seed=$seed" '{"circuit": 1, "scale": "smoke", "starts": 1}'
  echo "$reply" | grep -q "HTTP/1.1 202" || { echo "FAIL: submit seed=$seed:"; echo "$reply"; exit 1; }
  reply_id
}

# Polls /jobs/$1 until $2 matches the record; dies after ~30 s.
await_state() {
  local id=$1 pattern=$2
  for _ in $(seq 1 600); do
    req GET "/jobs/$id"
    echo "$reply" | grep -q "$pattern" && return 0
    sleep 0.05
  done
  echo "FAIL: job $id never matched: $pattern"; echo "$reply"
  cat daemon.log daemon.err
  exit 1
}

# /progress must report the svc.worker counter $1 >= $2.
expect_worker_stat() {
  local key=$1 min=$2
  req GET /progress
  local got
  got=$(echo "$reply" | sed -n "s/.*\"$key\": \([0-9]*\).*/\1/p" | head -n1)
  [ -n "$got" ] || { echo "FAIL: /progress lacks workers.$key"; echo "$reply"; exit 1; }
  [ "$got" -ge "$min" ] || { echo "FAIL: workers.$key=$got < $min"; echo "$reply"; exit 1; }
}

# --- 1..3: one daemon carries the kill -9, crash-once and poison phases --
export FIXEDPART_WORKER_CRASH_ONCE_SEED=41
export FIXEDPART_WORKER_CRASH_FLAG="$workdir/crash_once.flag"
export FIXEDPART_WORKER_CRASH_SEED=43
start_daemon --isolation=process --worker="$worker" --workers=1 \
  --queue-capacity=8 --max-attempts=3 --default-budget=30 --test-slow-ms=2000 \
  --flight-dir=flight

# 1. Clean-but-slow job; kill -9 its worker process mid-run.
id_clean=$(submit 7)
worker_pid=""
for _ in $(seq 1 250); do
  worker_pid=$(pgrep -P "$daemon_pid" -f fixedpart-worker | head -n1 || true)
  [ -n "$worker_pid" ] && break
  sleep 0.02
done
[ -n "$worker_pid" ] || { echo "FAIL: no worker process appeared"; cat daemon.log daemon.err; exit 1; }
# Let the worker's first 'T' span frame (the worker.start marker) reach
# the daemon, so the kill happens on a worker with a recorded phase; the
# --test-slow-ms pad keeps the job mid-run far longer than this.
sleep 0.5
kill -9 "$worker_pid"
echo "phase 1: killed worker pid=$worker_pid mid-job"

# The daemon must still answer immediately...
req GET /healthz
echo "$reply" | grep -q "HTTP/1.1 200" || { echo "FAIL: daemon unhealthy after worker kill"; exit 1; }
# ...and the job completes ok in a fresh worker via the retry loop.
await_state "$id_clean" '"status": "ok"'
expect_worker_stat crashed 1
echo "phase 1: job survived its worker (retried in a fresh process)"

# 6a. The kill left a well-formed flight-recorder dump naming the job and
# its last recorded phase (the worker.start marker streamed before death).
flight_dump="flight/crash-$id_clean.json"
[ -f "$flight_dump" ] || { echo "FAIL: no flight dump at $flight_dump"; ls -la flight 2>/dev/null; exit 1; }
grep -q '"reason": "crash"' "$flight_dump" || { echo "FAIL: dump lacks crash reason"; cat "$flight_dump"; exit 1; }
grep -q "\"job\": \"$id_clean\"" "$flight_dump" || { echo "FAIL: dump does not name the job"; cat "$flight_dump"; exit 1; }
grep -q '"phase": "worker.start"' "$flight_dump" || { echo "FAIL: dump lacks the last recorded phase"; cat "$flight_dump"; exit 1; }
grep -q '"entries"' "$flight_dump" || { echo "FAIL: dump lacks the flight ring"; cat "$flight_dump"; exit 1; }
echo "phase 6a: flight dump names job + last phase ($flight_dump)"

# 6b. The finished job's trace merges time-aligned worker spans (tagged
# with the real worker pid) with the daemon's own supervision spans
# (pid 1) under one job-derived trace id.
req GET "/jobs/$id_clean/trace"
echo "$reply" | grep -q "HTTP/1.1 200" || { echo "FAIL: /jobs/<id>/trace not served:"; echo "$reply"; exit 1; }
echo "$reply" | grep -q '"traceEvents"' || { echo "FAIL: trace is not Chrome trace JSON"; echo "$reply"; exit 1; }
echo "$reply" | grep -q '"worker.start"' || { echo "FAIL: trace lacks worker-side spans"; echo "$reply"; exit 1; }
echo "$reply" | grep -q '"svc.job_attempt"' || { echo "FAIL: trace lacks server-side spans"; echo "$reply"; exit 1; }
echo "$reply" | grep -q '"pid": 1[,}]' || { echo "FAIL: trace lacks daemon-side pid 1 spans"; echo "$reply"; exit 1; }
# At least one span from a real worker process (pid > 1).
echo "$reply" | grep -Eq '"pid": [0-9]{2,}' || { echo "FAIL: trace lacks worker-pid spans"; echo "$reply"; exit 1; }
req GET "/jobs/00000000000000000000000000000000/trace"
echo "$reply" | grep -q "HTTP/1.1 404" || { echo "FAIL: unknown trace not 404:"; echo "$reply"; exit 1; }
echo "phase 6b: merged worker+server trace served at /jobs/<id>/trace"

# 2. Crash-exactly-once: first worker plants the flag and aborts; the
# retry finds the flag and completes.
id_once=$(submit 41)
await_state "$id_once" '"status": "ok"'
[ -f "$FIXEDPART_WORKER_CRASH_FLAG" ] || { echo "FAIL: crash-once flag never planted"; exit 1; }
await_state "$id_once" '"attempts": 2'
expect_worker_stat crashed 2
echo "phase 2: crash-once job completed on retry"

# 3. Crashes every worker: poisoned as failed(crash) after the breaker
# trips; the daemon keeps serving throughout.
id_poison=$(submit 43)
await_state "$id_poison" '"status": "failed"'
req GET "/jobs/$id_poison"
echo "$reply" | grep -q '"error": "crash"' || { echo "FAIL: poisoned job not classified crash"; echo "$reply"; exit 1; }
req GET /healthz
echo "$reply" | grep -q "HTTP/1.1 200" || { echo "FAIL: daemon died with the repeat crasher"; exit 1; }
expect_worker_stat spawned 4
echo "phase 3: repeat crasher poisoned failed(crash), daemon healthy"
stop_daemon
unset FIXEDPART_WORKER_CRASH_ONCE_SEED FIXEDPART_WORKER_CRASH_FLAG FIXEDPART_WORKER_CRASH_SEED

# --- 4. RLIMIT_AS containment (gated on a selfcheck probe) ---------------
# Sanitizer builds reserve terabytes of shadow address space, so
# RLIMIT_AS kills the worker at startup regardless of the job; probe
# with the worker's own --selfcheck under the same cap first.
if (ulimit -v $((256 * 1024)) 2>/dev/null && "$worker" --selfcheck) >/dev/null 2>&1; then
  export FIXEDPART_WORKER_HOG_SEED=45
  start_daemon --isolation=process --worker="$worker" --workers=1 \
    --queue-capacity=8 --max-attempts=1 --default-budget=30 --rlimit-as-mb=256
  id_hog=$(submit 45)
  # bad_alloc inside the worker (reported "out of memory") or a hard
  # kill — either way the job terminates, the daemon does not.
  await_state "$id_hog" '"state": "done"'
  req GET "/jobs/$id_hog"
  echo "$reply" | grep -Eq '"status": "(failed|poisoned)"' || { echo "FAIL: hog job not failed:"; echo "$reply"; exit 1; }
  req GET /healthz
  echo "$reply" | grep -q "HTTP/1.1 200" || { echo "FAIL: daemon died with the memory hog"; exit 1; }
  expect_worker_stat oom_kills 1
  echo "phase 4: RLIMIT_AS contained the memory hog (classified OOM)"
  stop_daemon
  unset FIXEDPART_WORKER_HOG_SEED
else
  echo "phase 4: skipped (RLIMIT_AS unusable in this build: sanitizer shadow)"
fi

# --- 5. thread/process journal parity on a crash-free fleet --------------
# Strip every timing field (seconds plus the per-phase breakdown, which
# exists only when tracing observed non-zero phase time) before the diff.
normalize() {
  sed -e 's/"\([a-z_]*seconds\)": [^,}]*/"\1": 0/g' \
      -e 's/, "coarsen_seconds": 0//g' \
      -e 's/, "initial_seconds": 0//g' \
      -e 's/, "refine_seconds": 0//g' "$1"
}
for mode in thread process; do
  mkdir -p "$mode"
  rm -f port.txt jobs.journal
  ( cd "$mode" && rm -f jobs.journal )
  start_daemon --isolation="$mode" --worker="$worker" --workers=1 \
    --queue-capacity=8 --max-attempts=1 --default-budget=30 \
    --journal="$mode/jobs.journal"
  for seed in 11 12 13; do
    id=$(submit "$seed")
    await_state "$id" '"state": "done"'
  done
  stop_daemon
done
if ! diff <(normalize thread/jobs.journal) <(normalize process/jobs.journal); then
  echo "FAIL: journals differ across isolation modes"
  exit 1
fi
echo "phase 5: thread and process journals byte-identical (timing normalized)"

echo "PASS: partitiond worker-crash battery"
