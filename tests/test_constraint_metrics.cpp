#include "experiments/constraint_metrics.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "gen/netlist_gen.hpp"
#include "gen/regimes.hpp"
#include "hg/builder.hpp"
#include "hg/transform.hpp"
#include "part/partition.hpp"
#include "util/rng.hpp"

namespace fixedpart::exp {
namespace part = fixedpart::part;
namespace {

TEST(ConstraintMetrics, FreeInstanceIsAllZero) {
  hg::HypergraphBuilder b;
  for (int i = 0; i < 4; ++i) b.add_vertex(1);
  b.add_net(std::vector<hg::VertexId>{0, 1, 2, 3});
  const hg::Hypergraph g = b.build();
  const hg::FixedAssignment fixed(4, 2);
  const ConstraintMetrics m = compute_constraint_metrics(g, fixed);
  EXPECT_DOUBLE_EQ(m.pct_fixed, 0.0);
  EXPECT_DOUBLE_EQ(m.pct_movable_adjacent, 0.0);
  EXPECT_DOUBLE_EQ(m.avg_terminal_incidence, 0.0);
  EXPECT_DOUBLE_EQ(m.anchored_net_fraction, 0.0);
  EXPECT_EQ(m.forced_cut_weight, 0);
}

TEST(ConstraintMetrics, HandComputedExample) {
  // Nets: {0,1} (anchored by fixed 0), {2,3} (free), {0,4} where 0->p0 and
  // 4->p1 (contested, weight 5).
  hg::HypergraphBuilder b;
  for (int i = 0; i < 5; ++i) b.add_vertex(1);
  b.add_net(std::vector<hg::VertexId>{0, 1}, 1);
  b.add_net(std::vector<hg::VertexId>{2, 3}, 1);
  b.add_net(std::vector<hg::VertexId>{0, 4}, 5);
  const hg::Hypergraph g = b.build();
  hg::FixedAssignment fixed(5, 2);
  fixed.fix(0, 0);
  fixed.fix(4, 1);
  const ConstraintMetrics m = compute_constraint_metrics(g, fixed);
  EXPECT_DOUBLE_EQ(m.pct_fixed, 40.0);
  // Movable: 1 (adjacent via net 0), 2, 3 (free nets only).
  EXPECT_NEAR(m.pct_movable_adjacent, 100.0 / 3.0, 1e-9);
  // Incidence: vertex 1 -> 1/1; vertices 2,3 -> 0.
  EXPECT_NEAR(m.avg_terminal_incidence, 1.0 / 3.0, 1e-9);
  // Anchored weight: nets 0 and 2 = 1 + 5 of total 7.
  EXPECT_NEAR(m.anchored_net_fraction, 6.0 / 7.0, 1e-9);
  EXPECT_NEAR(m.contested_net_fraction, 5.0 / 7.0, 1e-9);
  EXPECT_EQ(m.forced_cut_weight, 5);
}

TEST(ConstraintMetrics, ForcedCutIsLowerBoundOnAnySolution) {
  util::Rng rng(1);
  gen::CircuitSpec spec;
  spec.num_cells = 200;
  spec.num_nets = 240;
  spec.num_pads = 8;
  spec.seed = 11;
  const auto circuit = gen::generate_circuit(spec);
  const gen::FixedVertexSeries series(circuit.graph, 2, rng);
  const hg::FixedAssignment fixed = series.rand_regime(30.0);
  const ConstraintMetrics m =
      compute_constraint_metrics(circuit.graph, fixed);
  ASSERT_GT(m.forced_cut_weight, 0);
  // Any assignment extending the fixed vertices cuts at least that much.
  for (int trial = 0; trial < 5; ++trial) {
    part::PartitionState state(circuit.graph, 2);
    for (hg::VertexId v = 0; v < circuit.graph.num_vertices(); ++v) {
      hg::PartitionId p = fixed.fixed_part(v);
      if (p == hg::kNoPartition) {
        p = static_cast<hg::PartitionId>(rng.next_below(2));
      }
      state.assign(v, p);
    }
    EXPECT_GE(state.cut(), m.forced_cut_weight);
  }
}

TEST(ConstraintMetrics, InvariantUnderTerminalClustering) {
  util::Rng rng(2);
  gen::CircuitSpec spec;
  spec.num_cells = 300;
  spec.num_nets = 330;
  spec.num_pads = 12;
  spec.seed = 12;
  const auto circuit = gen::generate_circuit(spec);
  const gen::FixedVertexSeries series(circuit.graph, 2, rng);
  for (const double pct : {5.0, 20.0, 40.0}) {
    const hg::FixedAssignment fixed = series.rand_regime(pct);
    const ConstraintMetrics original =
        compute_constraint_metrics(circuit.graph, fixed);
    const hg::ClusteredTerminals clustered =
        hg::cluster_terminals(circuit.graph, fixed);
    const ConstraintMetrics reduced =
        compute_constraint_metrics(clustered.graph, clustered.fixed);
    EXPECT_NEAR(original.anchored_net_fraction, reduced.anchored_net_fraction,
                1e-12);
    EXPECT_NEAR(original.contested_net_fraction,
                reduced.contested_net_fraction, 1e-12);
    EXPECT_EQ(original.forced_cut_weight, reduced.forced_cut_weight);
    // And %fixed is NOT invariant (the paper's point): it collapses to
    // two terminals.
    EXPECT_GT(original.pct_fixed, reduced.pct_fixed);
  }
}

TEST(ConstraintMetrics, MonotoneInFixedPercentage) {
  util::Rng rng(3);
  gen::CircuitSpec spec;
  spec.num_cells = 400;
  spec.num_nets = 440;
  spec.num_pads = 0;
  spec.seed = 13;
  const auto circuit = gen::generate_circuit(spec);
  const gen::FixedVertexSeries series(circuit.graph, 2, rng);
  double last_adjacent = -1.0;
  double last_anchored = -1.0;
  for (const double pct : {0.0, 10.0, 25.0, 50.0}) {
    const ConstraintMetrics m = compute_constraint_metrics(
        circuit.graph, series.rand_regime(pct));
    EXPECT_GE(m.pct_movable_adjacent, last_adjacent);
    EXPECT_GE(m.anchored_net_fraction, last_anchored);
    last_adjacent = m.pct_movable_adjacent;
    last_anchored = m.anchored_net_fraction;
  }
}

TEST(ConstraintMetrics, SizeMismatchThrows) {
  hg::HypergraphBuilder b;
  b.add_vertex(1);
  const hg::Hypergraph g = b.build();
  const hg::FixedAssignment fixed(5, 2);
  EXPECT_THROW(compute_constraint_metrics(g, fixed), std::invalid_argument);
}

TEST(ConstraintMetrics, EmptyGraph) {
  hg::HypergraphBuilder b;
  const hg::Hypergraph g = b.build();
  const hg::FixedAssignment fixed(0, 2);
  const ConstraintMetrics m = compute_constraint_metrics(g, fixed);
  EXPECT_DOUBLE_EQ(m.pct_fixed, 0.0);
}

}  // namespace
}  // namespace fixedpart::exp
