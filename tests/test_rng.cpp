#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace fixedpart::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const auto first = a.next();
  a.next();
  a.reseed(7);
  EXPECT_EQ(a.next(), first);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowZeroThrows) {
  Rng rng(3);
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(13);
  for (int i = 0; i < 500; ++i) {
    const auto x = rng.next_in(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
  }
}

TEST(Rng, NextInSinglePoint) {
  Rng rng(13);
  EXPECT_EQ(rng.next_in(5, 5), 5);
}

TEST(Rng, NextInBadRangeThrows) {
  Rng rng(13);
  EXPECT_THROW(rng.next_in(2, 1), std::invalid_argument);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, NextBoolExtremes) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, NextBoolFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.next_bool(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(31);
  double sum = 0.0;
  double sumsq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  rng.shuffle(std::span<int>(v));
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, ShuffleActuallyShuffles) {
  Rng rng(41);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  rng.shuffle(std::span<int>(v));
  int in_place = 0;
  for (int i = 0; i < 100; ++i) in_place += (v[i] == i);
  EXPECT_LT(in_place, 15);
}

TEST(Rng, SampleIndicesDistinctAndBounded) {
  Rng rng(43);
  const auto sample = rng.sample_indices(50, 20);
  ASSERT_EQ(sample.size(), 20u);
  std::set<std::uint32_t> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 20u);
  for (auto i : sample) EXPECT_LT(i, 50u);
}

TEST(Rng, SampleIndicesFullSet) {
  Rng rng(47);
  const auto sample = rng.sample_indices(10, 10);
  std::set<std::uint32_t> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, SampleIndicesTooManyThrows) {
  Rng rng(47);
  EXPECT_THROW(rng.sample_indices(5, 6), std::invalid_argument);
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(53);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (parent.next() == child.next());
  EXPECT_LT(equal, 3);
}

TEST(Rng, StreamIsPureFunctionOfSeedAndIndex) {
  // stream() must not depend on any generator state — the parallel
  // pipeline derives streams from (seed, work-item index) on whatever
  // thread reaches the item first, so two derivations of the same pair
  // must restart identical sequences.
  Rng a = Rng::stream(99, 7);
  Rng b = Rng::stream(99, 7);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, StreamsDecorrelateAcrossIndexAndSeed) {
  Rng base = Rng::stream(99, 7);
  Rng next_index = Rng::stream(99, 8);
  Rng next_seed = Rng::stream(100, 7);
  int equal_index = 0;
  int equal_seed = 0;
  for (int i = 0; i < 100; ++i) {
    const auto x = base.next();
    equal_index += (x == next_index.next());
    equal_seed += (x == next_seed.next());
  }
  EXPECT_LT(equal_index, 3);
  EXPECT_LT(equal_seed, 3);
}

TEST(Rng, UniformRandomBitGeneratorInterface) {
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), ~std::uint64_t{0});
  Rng rng(59);
  (void)rng();  // callable
}

}  // namespace
}  // namespace fixedpart::util
