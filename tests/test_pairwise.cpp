#include "part/pairwise.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hg/builder.hpp"
#include "part/initial.hpp"
#include "util/rng.hpp"

namespace fixedpart::part {
namespace {

hg::Hypergraph random_graph(util::Rng& rng, int n, int nets) {
  hg::HypergraphBuilder b;
  for (int i = 0; i < n; ++i) {
    b.add_vertex(1 + static_cast<Weight>(rng.next_below(3)));
  }
  for (int e = 0; e < nets; ++e) {
    std::vector<hg::VertexId> pins;
    const int degree = 2 + static_cast<int>(rng.next_below(4));
    for (int d = 0; d < degree; ++d) {
      pins.push_back(static_cast<hg::VertexId>(
          rng.next_below(static_cast<std::uint64_t>(n))));
    }
    b.add_net(pins);
  }
  return b.build();
}

TEST(Pairwise, ImprovesFourWayCut) {
  util::Rng gen(1);
  const hg::Hypergraph g = random_graph(gen, 80, 160);
  const hg::FixedAssignment fixed(g.num_vertices(), 4);
  const auto balance = BalanceConstraint::relative(g, 4, 20.0);
  PairwiseRefiner refiner(g, fixed, balance);
  PartitionState state(g, 4);
  util::Rng rng(2);
  random_feasible_assignment(state, fixed, balance, rng);
  const Weight initial = state.cut();
  const auto result = refiner.refine(state, rng, PairwiseConfig{});
  EXPECT_EQ(result.initial_cut, initial);
  EXPECT_LT(result.final_cut, initial);
  EXPECT_EQ(result.final_cut, state.cut());
  EXPECT_EQ(state.cut(), state.recompute_cut());
  EXPECT_TRUE(balance.satisfied(state.part_weights()));
}

TEST(Pairwise, RespectsFixedAndOrSets) {
  util::Rng gen(3);
  const hg::Hypergraph g = random_graph(gen, 60, 120);
  hg::FixedAssignment fixed(g.num_vertices(), 4);
  fixed.fix(0, 2);
  fixed.restrict_to(1, 0b0011);  // parts 0 or 1 only
  const auto balance = BalanceConstraint::relative(g, 4, 30.0);
  PairwiseRefiner refiner(g, fixed, balance);
  PartitionState state(g, 4);
  util::Rng rng(4);
  random_feasible_assignment(state, fixed, balance, rng);
  refiner.refine(state, rng, PairwiseConfig{});
  EXPECT_EQ(state.part_of(0), 2);
  EXPECT_TRUE(state.part_of(1) == 0 || state.part_of(1) == 1);
  check_respects_fixed(state, fixed);
}

TEST(Pairwise, StopsAfterNonImprovingSweep) {
  util::Rng gen(5);
  const hg::Hypergraph g = random_graph(gen, 40, 80);
  const hg::FixedAssignment fixed(g.num_vertices(), 3);
  const auto balance = BalanceConstraint::relative(g, 3, 30.0);
  PairwiseRefiner refiner(g, fixed, balance);
  PartitionState state(g, 3);
  util::Rng rng(6);
  random_feasible_assignment(state, fixed, balance, rng);
  PairwiseConfig config;
  config.max_sweeps = 20;
  const auto result = refiner.refine(state, rng, config);
  EXPECT_LT(result.sweeps, 20);  // converged before the cap
}

TEST(Pairwise, TwoPartsEquivalentToBipartitionRefinement) {
  util::Rng gen(7);
  const hg::Hypergraph g = random_graph(gen, 50, 100);
  const hg::FixedAssignment fixed(g.num_vertices(), 2);
  const auto balance = BalanceConstraint::relative(g, 2, 10.0);
  PairwiseRefiner refiner(g, fixed, balance);
  PartitionState state(g, 2);
  util::Rng rng(8);
  random_feasible_assignment(state, fixed, balance, rng);
  const Weight initial = state.cut();
  refiner.refine(state, rng, PairwiseConfig{});
  EXPECT_LT(state.cut(), initial);
}

TEST(Pairwise, Validation) {
  util::Rng gen(9);
  const hg::Hypergraph g = random_graph(gen, 10, 15);
  const hg::FixedAssignment fixed(g.num_vertices(), 3);
  const auto balance2 = BalanceConstraint::relative(g, 2, 10.0);
  EXPECT_THROW(PairwiseRefiner(g, fixed, balance2), std::invalid_argument);

  const auto balance3 = BalanceConstraint::relative(g, 3, 10.0);
  PairwiseRefiner refiner(g, fixed, balance3);
  PartitionState incomplete(g, 3);
  util::Rng rng(10);
  EXPECT_THROW(refiner.refine(incomplete, rng, PairwiseConfig{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace fixedpart::part
