#include "hg/io_hmetis.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "hg/builder.hpp"

namespace fixedpart::hg {
namespace {

TEST(IoHmetis, ReadsUnweighted) {
  std::istringstream in("2 4\n1 2\n3 4 2\n");
  const Hypergraph g = read_hmetis(in);
  EXPECT_EQ(g.num_nets(), 2);
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.net_size(1), 3);
  EXPECT_EQ(g.vertex_weight(0), 1);
  EXPECT_EQ(g.net_weight(0), 1);
  g.validate();
}

TEST(IoHmetis, ReadsCommentsAndBlankLines) {
  std::istringstream in("% comment\n\n2 2\n% another\n1 2\n\n2 1\n");
  const Hypergraph g = read_hmetis(in);
  EXPECT_EQ(g.num_nets(), 2);
}

TEST(IoHmetis, ReadsNetWeights) {
  std::istringstream in("1 2 1\n9 1 2\n");
  const Hypergraph g = read_hmetis(in);
  EXPECT_EQ(g.net_weight(0), 9);
}

TEST(IoHmetis, ReadsVertexWeights) {
  std::istringstream in("1 2 10\n1 2\n5\n7\n");
  const Hypergraph g = read_hmetis(in);
  EXPECT_EQ(g.vertex_weight(0), 5);
  EXPECT_EQ(g.vertex_weight(1), 7);
}

TEST(IoHmetis, ReadsBothWeights) {
  std::istringstream in("1 2 11\n3 1 2\n5\n7\n");
  const Hypergraph g = read_hmetis(in);
  EXPECT_EQ(g.net_weight(0), 3);
  EXPECT_EQ(g.vertex_weight(1), 7);
}

TEST(IoHmetis, RoundTrip) {
  HypergraphBuilder b;
  const VertexId v0 = b.add_vertex(3);
  const VertexId v1 = b.add_vertex(1);
  const VertexId v2 = b.add_vertex(4);
  b.add_net(std::vector<VertexId>{v0, v1}, 2);
  b.add_net(std::vector<VertexId>{v0, v1, v2}, 1);
  const Hypergraph g = b.build();

  std::ostringstream out;
  write_hmetis(out, g);
  std::istringstream in(out.str());
  const Hypergraph g2 = read_hmetis(in);

  ASSERT_EQ(g2.num_vertices(), g.num_vertices());
  ASSERT_EQ(g2.num_nets(), g.num_nets());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g2.vertex_weight(v), g.vertex_weight(v));
  }
  for (NetId e = 0; e < g.num_nets(); ++e) {
    EXPECT_EQ(g2.net_weight(e), g.net_weight(e));
    ASSERT_EQ(g2.net_size(e), g.net_size(e));
    for (int i = 0; i < g.net_size(e); ++i) {
      EXPECT_EQ(g2.pins(e)[i], g.pins(e)[i]);
    }
  }
}

TEST(IoHmetis, Errors) {
  {
    std::istringstream in("");
    EXPECT_THROW(read_hmetis(in), std::runtime_error);
  }
  {
    std::istringstream in("2 2\n1 2\n");  // missing second net
    EXPECT_THROW(read_hmetis(in), std::runtime_error);
  }
  {
    std::istringstream in("1 2\n1 5\n");  // pin out of range
    EXPECT_THROW(read_hmetis(in), std::runtime_error);
  }
  {
    std::istringstream in("1 2 99\n1 2\n");  // bad fmt
    EXPECT_THROW(read_hmetis(in), std::runtime_error);
  }
  {
    std::istringstream in("1 2 10\n1 2\n");  // missing vertex weights
    EXPECT_THROW(read_hmetis(in), std::runtime_error);
  }
}

TEST(IoHmetis, FixFileRoundTrip) {
  FixedAssignment fixed(4, 2);
  fixed.fix(1, 0);
  fixed.fix(3, 1);
  std::ostringstream out;
  write_fix(out, fixed);
  EXPECT_EQ(out.str(), "-1\n0\n-1\n1\n");
  std::istringstream in(out.str());
  const FixedAssignment read = read_fix(in, 4, 2);
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_EQ(read.fixed_part(v), fixed.fixed_part(v));
  }
}

TEST(IoHmetis, FixFileErrors) {
  {
    std::istringstream in("0\n");  // too few lines
    EXPECT_THROW(read_fix(in, 2, 2), std::runtime_error);
  }
  {
    std::istringstream in("5\n0\n");  // part out of range
    EXPECT_THROW(read_fix(in, 2, 2), std::runtime_error);
  }
}

TEST(IoHmetis, FileRoundTrip) {
  HypergraphBuilder b;
  b.add_vertex(1);
  b.add_vertex(2);
  b.add_net(std::vector<VertexId>{0, 1});
  const Hypergraph g = b.build();
  const std::string path = ::testing::TempDir() + "/io_test.hgr";
  write_hmetis_file(path, g);
  const Hypergraph g2 = read_hmetis_file(path);
  EXPECT_EQ(g2.num_vertices(), 2);
  EXPECT_THROW(read_hmetis_file("/nonexistent/dir/x.hgr"),
               std::runtime_error);
}

}  // namespace
}  // namespace fixedpart::hg
