#include "hg/fixed.hpp"

#include <gtest/gtest.h>

namespace fixedpart::hg {
namespace {

TEST(FixedAssignment, StartsAllFree) {
  const FixedAssignment f(5, 2);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_FALSE(f.is_restricted(v));
    EXPECT_FALSE(f.is_fixed(v));
    EXPECT_EQ(f.fixed_part(v), kNoPartition);
    EXPECT_TRUE(f.is_allowed(v, 0));
    EXPECT_TRUE(f.is_allowed(v, 1));
  }
  EXPECT_EQ(f.count_fixed(), 0);
  EXPECT_EQ(f.count_free(), 5);
}

TEST(FixedAssignment, FixPinsToSinglePart) {
  FixedAssignment f(3, 2);
  f.fix(1, 0);
  EXPECT_TRUE(f.is_fixed(1));
  EXPECT_EQ(f.fixed_part(1), 0);
  EXPECT_TRUE(f.is_allowed(1, 0));
  EXPECT_FALSE(f.is_allowed(1, 1));
  EXPECT_EQ(f.count_fixed(), 1);
  EXPECT_EQ(f.count_free(), 2);
}

TEST(FixedAssignment, OrSetSemantics) {
  FixedAssignment f(2, 4);
  f.restrict_to(0, 0b0101);  // partitions 0 and 2 ("either left quadrant")
  EXPECT_TRUE(f.is_restricted(0));
  EXPECT_FALSE(f.is_fixed(0));
  EXPECT_TRUE(f.is_allowed(0, 0));
  EXPECT_FALSE(f.is_allowed(0, 1));
  EXPECT_TRUE(f.is_allowed(0, 2));
  EXPECT_FALSE(f.is_allowed(0, 3));
  EXPECT_EQ(f.fixed_part(0), kNoPartition);
}

TEST(FixedAssignment, FreeUndoesFix) {
  FixedAssignment f(2, 2);
  f.fix(0, 1);
  f.free(0);
  EXPECT_FALSE(f.is_restricted(0));
  EXPECT_EQ(f.count_fixed(), 0);
}

TEST(FixedAssignment, RangeChecks) {
  FixedAssignment f(2, 2);
  EXPECT_THROW(f.fix(5, 0), std::out_of_range);
  EXPECT_THROW(f.fix(0, 2), std::out_of_range);
  EXPECT_THROW(f.fix(0, -1), std::out_of_range);
  EXPECT_THROW(f.restrict_to(0, 0), std::invalid_argument);
  EXPECT_THROW(f.restrict_to(0, 0b100), std::invalid_argument);  // part 2
}

TEST(FixedAssignment, ConstructionLimits) {
  EXPECT_THROW(FixedAssignment(3, 0), std::invalid_argument);
  EXPECT_THROW(FixedAssignment(3, 65), std::invalid_argument);
  EXPECT_THROW(FixedAssignment(-1, 2), std::invalid_argument);
  EXPECT_NO_THROW(FixedAssignment(0, 64));
}

TEST(FixedAssignment, SixtyFourPartitionsFullMask) {
  FixedAssignment f(1, 64);
  EXPECT_EQ(f.full_mask(), ~std::uint64_t{0});
  f.fix(0, 63);
  EXPECT_EQ(f.fixed_part(0), 63);
}

TEST(FixedAssignment, CountsMixed) {
  FixedAssignment f(4, 4);
  f.fix(0, 1);
  f.restrict_to(1, 0b0011);
  EXPECT_EQ(f.count_fixed(), 1);
  EXPECT_EQ(f.count_free(), 2);  // vertices 2 and 3
}

}  // namespace
}  // namespace fixedpart::hg
