// Prometheus exposition and the embedded /metrics endpoint (ctest label:
// obs-http): a golden rendering plus a promtool-compatible line-grammar
// validator, every HTTP route exercised through a raw loopback socket,
// concurrent scrapes against 8 writer threads (the TSan certification of
// the gauge/label hot paths), and an endpoint lifecycle that must not leak
// file descriptors. The exposition tests build Snapshots by hand, so they
// run even under FIXEDPART_OBS=OFF; everything needing a live Registry or
// a server skips there.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/exporter.hpp"
#include "obs/exposition.hpp"
#include "obs/http.hpp"
#include "obs/registry.hpp"

#ifdef __unix__
#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace {

using namespace fixedpart;

// --- exposition format ---------------------------------------------------

TEST(Exposition, PrometheusNameSanitizesInvalidChars) {
  EXPECT_EQ(obs::prometheus_name("fm.moves_attempted"), "fm_moves_attempted");
  EXPECT_EQ(obs::prometheus_name("svc.jobs{state=\"ok\"}"), "svc_jobs");
  EXPECT_EQ(obs::prometheus_name("9lives"), "_lives");
  EXPECT_EQ(obs::prometheus_name(""), "_");
}

TEST(Exposition, LabeledRendersAndEscapes) {
  EXPECT_EQ(obs::labeled("svc.jobs", {{"state", "ok"}}),
            "svc.jobs{state=\"ok\"}");
  EXPECT_EQ(obs::labeled("a", {{"k1", "v1"}, {"k2", "v2"}}),
            "a{k1=\"v1\",k2=\"v2\"}");
  // Backslash, quote and newline must be escaped per the exposition spec.
  EXPECT_EQ(obs::labeled("a", {{"k", "x\\y\"z\n"}}),
            "a{k=\"x\\\\y\\\"z\\n\"}");
}

obs::Snapshot golden_snapshot() {
  obs::Snapshot snap;
  snap.counters.push_back({"fm.moves", 42});
  snap.counters.push_back({"svc.jobs{state=\"ok\"}", 5});
  snap.counters.push_back({"svc.jobs{state=\"failed\"}", 1});
  snap.gauges.push_back({"svc.queue_depth", 7.0});
  snap.gauges.push_back({"svc.heartbeat_age_seconds", 0.25});
  obs::HistogramValue h;
  h.name = "ml.run_seconds";
  h.lo = 0.0;
  h.hi = 4.0;
  h.counts = {3, 1, 0, 2};  // top bin holds clamped >= hi observations
  h.total = 6;
  h.sum = 9.5;
  snap.histograms.push_back(h);
  return snap;
}

TEST(Exposition, GoldenRendering) {
  const std::string expected =
      "# TYPE fm_moves counter\n"
      "fm_moves 42\n"
      "# TYPE svc_jobs counter\n"
      "svc_jobs{state=\"ok\"} 5\n"
      "svc_jobs{state=\"failed\"} 1\n"
      "# TYPE svc_queue_depth gauge\n"
      "svc_queue_depth 7\n"
      "# TYPE svc_heartbeat_age_seconds gauge\n"
      "svc_heartbeat_age_seconds 0.25\n"
      "# TYPE ml_run_seconds histogram\n"
      "ml_run_seconds_bucket{le=\"1\"} 3\n"
      "ml_run_seconds_bucket{le=\"2\"} 4\n"
      "ml_run_seconds_bucket{le=\"3\"} 4\n"
      "ml_run_seconds_bucket{le=\"+Inf\"} 6\n"
      "ml_run_seconds_sum 9.5\n"
      "ml_run_seconds_count 6\n";
  EXPECT_EQ(obs::to_prometheus(golden_snapshot()), expected);
}

// A promtool-shaped validator for Prometheus text format 0.0.4: every
// line is a comment, a sample `name{labels} value`, or blank; each family
// gets exactly one `# TYPE` line, emitted before any of its samples;
// cumulative bucket counts never decrease and end at `+Inf` == _count.
void validate_prometheus_text(const std::string& text) {
  const auto valid_name = [](const std::string& name) {
    if (name.empty()) return false;
    for (std::size_t i = 0; i < name.size(); ++i) {
      const char c = name[i];
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      c == '_' || c == ':' || (i > 0 && c >= '0' && c <= '9');
      if (!ok) return false;
    }
    return true;
  };
  const auto base_family = [](std::string name) {
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string s = suffix;
      if (name.size() > s.size() &&
          name.compare(name.size() - s.size(), s.size(), s) == 0) {
        return name.substr(0, name.size() - s.size());
      }
    }
    return name;
  };

  std::vector<std::string> typed;       // families with a TYPE line seen
  std::vector<std::string> typed_kind;  // parallel: counter/gauge/histogram
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    SCOPED_TRACE("line " + std::to_string(lineno) + ": " + line);
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream fields(line);
      std::string hash, keyword, name, kind;
      fields >> hash >> keyword >> name >> kind;
      ASSERT_EQ(keyword, "TYPE") << "only TYPE comments are emitted";
      ASSERT_TRUE(valid_name(name));
      ASSERT_TRUE(kind == "counter" || kind == "gauge" ||
                  kind == "histogram" || kind == "summary" ||
                  kind == "untyped");
      for (const std::string& seen : typed) {
        ASSERT_NE(seen, name) << "duplicate TYPE line";
      }
      typed.push_back(name);
      typed_kind.push_back(kind);
      continue;
    }
    // Sample line: name[{labels}] value
    std::size_t name_end = line.find_first_of("{ ");
    ASSERT_NE(name_end, std::string::npos);
    const std::string name = line.substr(0, name_end);
    ASSERT_TRUE(valid_name(name));
    std::size_t value_at = name_end;
    if (line[name_end] == '{') {
      // Label body: key="value" pairs; quotes must balance even with
      // escaped characters inside.
      std::size_t i = name_end + 1;
      bool in_quotes = false;
      while (i < line.size() && (in_quotes || line[i] != '}')) {
        if (line[i] == '\\' && in_quotes) {
          i += 2;
          continue;
        }
        if (line[i] == '"') in_quotes = !in_quotes;
        ++i;
      }
      ASSERT_LT(i, line.size()) << "unterminated label body";
      value_at = i + 1;
    }
    ASSERT_LT(value_at, line.size());
    ASSERT_EQ(line[value_at], ' ');
    const std::string value = line.substr(value_at + 1);
    ASSERT_FALSE(value.empty());
    if (value != "NaN" && value != "+Inf" && value != "-Inf") {
      std::size_t parsed = 0;
      EXPECT_NO_THROW({
        (void)std::stod(value, &parsed);
      });
      EXPECT_EQ(parsed, value.size()) << "trailing junk after value";
    }
    // The family must have announced its type before its first sample.
    const std::string family = base_family(name);
    bool announced = false;
    for (std::size_t t = 0; t < typed.size(); ++t) {
      if (typed[t] == family || typed[t] == name) announced = true;
    }
    EXPECT_TRUE(announced) << "sample before its TYPE line: " << name;
  }
}

TEST(Exposition, GoldenPassesLineGrammar) {
  validate_prometheus_text(obs::to_prometheus(golden_snapshot()));
}

TEST(Exposition, NonFiniteGaugesRenderAsSpecTokens) {
  obs::Snapshot snap;
  snap.gauges.push_back({"g.pos", std::numeric_limits<double>::infinity()});
  snap.gauges.push_back({"g.neg", -std::numeric_limits<double>::infinity()});
  const std::string text = obs::to_prometheus(snap);
  EXPECT_NE(text.find("g_pos +Inf\n"), std::string::npos);
  EXPECT_NE(text.find("g_neg -Inf\n"), std::string::npos);
  validate_prometheus_text(text);
}

#if FIXEDPART_OBS_ENABLED

TEST(Exposition, LiveRegistryRoundTrip) {
  obs::Registry registry;
  const auto jobs_ok = registry.counter(
      obs::labeled("svc.jobs", {{"state", "ok"}}));
  const auto depth = registry.gauge("svc.queue_depth");
  const auto seconds = registry.histogram("job.seconds", 0.0, 10.0, 5);
  registry.add(jobs_ok, 3);
  registry.set(depth, 17.0);
  registry.observe(seconds, 1.0);
  registry.observe(seconds, 99.0);  // clamps into the top bin and to hi=10

  const std::string text = obs::to_prometheus(registry.scrape());
  validate_prometheus_text(text);
  EXPECT_NE(text.find("svc_jobs{state=\"ok\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("svc_queue_depth 17\n"), std::string::npos);
  EXPECT_NE(text.find("job_seconds_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("job_seconds_sum 11\n"), std::string::npos);
  EXPECT_NE(text.find("job_seconds_count 2\n"), std::string::npos);
}

TEST(Registry, GaugeLastWriteWinsAcrossThreads) {
  obs::Registry registry;
  const auto id = registry.gauge("g");
  registry.set(id, 1.0);
  std::thread other([&] { registry.set(id, 2.0); });
  other.join();
  // The other thread's write carries the higher sequence number.
  const obs::Snapshot snap = registry.scrape();
  ASSERT_NE(snap.gauge("g"), nullptr);
  EXPECT_EQ(snap.gauge("g")->value, 2.0);
}

TEST(Registry, LabelSetCapThrows) {
  obs::Registry registry;
  for (std::uint32_t i = 0; i < obs::Registry::kMaxLabelSets; ++i) {
    registry.counter(
        obs::labeled("fam", {{"k", "v" + std::to_string(i)}}));
  }
  EXPECT_THROW(registry.counter(obs::labeled("fam", {{"k", "overflow"}})),
               std::length_error);
  // Other families are unaffected by the cap.
  EXPECT_NO_THROW(registry.counter(obs::labeled("other", {{"k", "v"}})));
}

#endif  // FIXEDPART_OBS_ENABLED

// --- the HTTP endpoint ---------------------------------------------------

#if defined(__unix__) && FIXEDPART_OBS_ENABLED

/// Minimal blocking HTTP client: one request, reads until EOF (the server
/// always closes after responding).
std::string http_get(std::uint16_t port, const std::string& request_text) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::size_t sent = 0;
  while (sent < request_text.size()) {
    const ssize_t n =
        ::send(fd, request_text.data() + sent, request_text.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buffer[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string simple_get(std::uint16_t port, const std::string& path) {
  return http_get(port, "GET " + path +
                            " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                            "Connection: close\r\n\r\n");
}

std::string body_of(const std::string& response) {
  const std::size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? std::string() : response.substr(at + 4);
}

TEST(HttpEndpoint, ServesEveryRoute) {
  obs::Registry registry;
  registry.add(registry.counter("test.hits"), 3);
  registry.set(registry.gauge("test.depth"), 4.0);

  obs::HttpEndpointConfig config;
  config.registry = &registry;
  config.progress = [] { return std::string("{\"done\": 1}\n"); };
  obs::HttpEndpoint endpoint(config);
  endpoint.start();
  ASSERT_GT(endpoint.port(), 0);

  const std::string metrics = simple_get(endpoint.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("test_hits 3\n"), std::string::npos);
  EXPECT_NE(metrics.find("test_depth 4\n"), std::string::npos);
  validate_prometheus_text(body_of(metrics));

  const std::string json = simple_get(endpoint.port(), "/metrics.json");
  EXPECT_NE(json.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(json.find("application/json"), std::string::npos);
  EXPECT_NE(json.find("\"test.hits\": 3"), std::string::npos);

  const std::string health = simple_get(endpoint.port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_EQ(body_of(health), "ok\n");

  const std::string progress = simple_get(endpoint.port(), "/progress");
  EXPECT_NE(progress.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_EQ(body_of(progress), "{\"done\": 1}\n");

  const std::string missing = simple_get(endpoint.port(), "/nope");
  EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos);

  const std::string post = http_get(
      endpoint.port(),
      "POST /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
  EXPECT_NE(post.find("HTTP/1.1 405"), std::string::npos);

  EXPECT_GE(endpoint.requests_served(), 6u);
  endpoint.stop();
  EXPECT_FALSE(endpoint.running());
}

TEST(HttpEndpoint, ProgressDefaultsToEmptyObject) {
  obs::Registry registry;
  obs::HttpEndpointConfig config;
  config.registry = &registry;
  obs::HttpEndpoint endpoint(config);
  endpoint.start();
  EXPECT_EQ(body_of(simple_get(endpoint.port(), "/progress")), "{}\n");
}

// SIGPIPE regression: a scraper that vanishes halfway through a large
// response body is routine (timeouts, ^C'd curls), and historically a
// write to the half-closed socket could raise SIGPIPE and kill the whole
// daemon. The endpoint must instead absorb the abort (MSG_NOSIGNAL +
// ignored disposition + EPIPE/ECONNRESET handling in send_all), count it
// in obs.http_peer_gone, and keep serving.
TEST(HttpEndpoint, SurvivesClientAbortMidLargeMetricsBody) {
  obs::Registry registry;
  obs::HttpEndpointConfig config;
  config.registry = &registry;
  config.io_timeout_seconds = 10.0;
  // A body far larger than any plausible socket-buffer capacity (sndbuf
  // autotuning can reach several MB on loopback), so the server is still
  // mid-send when the client aborts. /progress shares send_all with
  // /metrics, and its body size is not capped by registry capacity.
  config.progress = [] { return std::string(16u << 20, 'x') + "\n"; };
  obs::HttpEndpoint endpoint(config);
  endpoint.start();

  const std::int64_t gone_before =
      obs::Registry::global().scrape().counter("obs.http_peer_gone");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  // A tiny receive window keeps the in-flight byte count small, so most
  // of the body is still unsent at abort time.
  const int tiny = 4096;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request =
      "GET /progress HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  char first = 0;
  ASSERT_EQ(::recv(fd, &first, 1, 0), 1);  // the response is under way
  // SO_LINGER{on, 0} turns close() into an immediate RST: the server's
  // next send on this connection fails with ECONNRESET/EPIPE mid-body.
  linger hard{};
  hard.l_onoff = 1;
  hard.l_linger = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  ::close(fd);

  // The serve loop handles connections synchronously, so by the time the
  // next request is answered the aborted one has fully unwound. The
  // process not having died of SIGPIPE is the actual regression check.
  const std::string health = simple_get(endpoint.port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_GE(obs::Registry::global().scrape().counter("obs.http_peer_gone"),
            gone_before + 1);
  endpoint.stop();
}

// The TSan certification of the gauge/label hot paths: 8 writer threads
// hammer counters, labeled counters and gauges while the main thread
// scrapes through real GET /metrics requests.
TEST(HttpEndpoint, ConcurrentScrapesUnderWriterLoad) {
  obs::Registry registry;
  const auto hits = registry.counter("load.hits");
  const auto depth = registry.gauge("load.depth");
  const auto seconds = registry.histogram("load.seconds", 0.0, 1.0, 8);
  std::vector<obs::MetricId> labeled_ids;
  for (int t = 0; t < 8; ++t) {
    labeled_ids.push_back(registry.counter(
        obs::labeled("load.jobs", {{"worker", std::to_string(t)}})));
  }

  obs::HttpEndpointConfig config;
  config.registry = &registry;
  obs::HttpEndpoint endpoint(config);
  endpoint.start();

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 8; ++t) {
    writers.emplace_back([&, t] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        registry.add(hits);
        registry.add(labeled_ids[static_cast<std::size_t>(t)]);
        registry.set(depth, static_cast<double>(i % 100));
        registry.observe(seconds, static_cast<double>(i % 10) / 10.0);
        ++i;
      }
    });
  }
  for (int scrapes = 0; scrapes < 20; ++scrapes) {
    const std::string response = simple_get(endpoint.port(), "/metrics");
    ASSERT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
    validate_prometheus_text(body_of(response));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& w : writers) w.join();

  // A final quiescent scrape must balance exactly.
  const obs::Snapshot snap = registry.scrape();
  std::int64_t labeled_total = 0;
  for (int t = 0; t < 8; ++t) {
    labeled_total += snap.counter(
        obs::labeled("load.jobs", {{"worker", std::to_string(t)}}));
  }
  EXPECT_EQ(labeled_total, snap.counter("load.hits"));
}

int open_fd_count() {
  int count = 0;
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count;
}

TEST(HttpEndpoint, LifecycleDoesNotLeakFds) {
  obs::Registry registry;
  const int before = open_fd_count();
  if (before < 0) GTEST_SKIP() << "/proc/self/fd unavailable";
  for (int round = 0; round < 10; ++round) {
    obs::HttpEndpointConfig config;
    config.registry = &registry;
    obs::HttpEndpoint endpoint(config);
    endpoint.start();
    simple_get(endpoint.port(), "/healthz");
    endpoint.stop();
    endpoint.stop();  // idempotent
  }
  EXPECT_EQ(open_fd_count(), before);
}

TEST(HttpEndpoint, StartStopWithoutRequests) {
  obs::Registry registry;
  obs::HttpEndpointConfig config;
  config.registry = &registry;
  for (int round = 0; round < 3; ++round) {
    obs::HttpEndpoint endpoint(config);
    endpoint.start();
    EXPECT_TRUE(endpoint.running());
  }  // destructor stops
}

#endif  // __unix__ && FIXEDPART_OBS_ENABLED

// --- the exporter --------------------------------------------------------

#if FIXEDPART_OBS_ENABLED

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(Exporter, TickNowWritesBothFormats) {
  obs::Registry registry;
  registry.add(registry.counter("exp.ticks_seen"), 9);
  const std::string dir = ::testing::TempDir();
  obs::ExporterConfig config;
  config.registry = &registry;
  config.json_path = dir + "/exporter_test.json";
  config.prom_path = dir + "/exporter_test.prom";
  obs::Exporter exporter(config);
  exporter.tick_now();
  EXPECT_EQ(exporter.ticks(), 1u);

  const std::string json = slurp(config.json_path);
  EXPECT_NE(json.find("\"exp.ticks_seen\": 9"), std::string::npos);
  const std::string prom = slurp(config.prom_path);
  EXPECT_NE(prom.find("exp_ticks_seen 9\n"), std::string::npos);
}

TEST(Exporter, BackgroundThreadTicksPeriodically) {
  obs::Registry registry;
  registry.add(registry.counter("exp.bg"), 1);
  const std::string dir = ::testing::TempDir();
  obs::ExporterConfig config;
  config.registry = &registry;
  config.interval_seconds = 0.01;
  config.json_path = dir + "/exporter_bg.json";
  obs::Exporter exporter(config);
  exporter.start();
  for (int i = 0; i < 200 && exporter.ticks() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  exporter.stop();
  EXPECT_GE(exporter.ticks(), 3u);
  EXPECT_NE(slurp(config.json_path).find("\"exp.bg\": 1"),
            std::string::npos);
}

#endif  // FIXEDPART_OBS_ENABLED

}  // namespace
