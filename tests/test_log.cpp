// Structured JSONL logging (ctest label: log): line format, the level
// filter and the crash ring (suppressed lines flushed by kFatal /
// flush_ring), JSON escaping, ring overflow ordering, and concurrent
// writers. Uses local Log instances with file sinks so tests never fight
// over the global logger or spam the test harness's stderr.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/log.hpp"

namespace {

using namespace fixedpart;

std::vector<std::string> file_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(LogLevelNames, RoundTrip) {
  EXPECT_STREQ(obs::to_string(obs::LogLevel::kDebug), "debug");
  EXPECT_STREQ(obs::to_string(obs::LogLevel::kFatal), "fatal");
  EXPECT_EQ(obs::log_level_from_string("warn"), obs::LogLevel::kWarn);
  EXPECT_EQ(obs::log_level_from_string("warning"), obs::LogLevel::kWarn);
  EXPECT_EQ(obs::log_level_from_string("bogus"), obs::LogLevel::kInfo);
}

#if FIXEDPART_OBS_ENABLED

TEST(Log, LineCarriesTimestampsLevelSubsystemAndFields) {
  const std::string path = temp_path("log_format.jsonl");
  {
    std::ofstream truncate(path, std::ios::trunc);
  }
  obs::Log log;
  log.set_sink_path(path);
  log.write(obs::LogLevel::kInfo, "svc", "job finished",
            {{"id", "job7"},
             {"attempts", 2},
             {"seconds", 0.25},
             {"truncated", false}});
  log.flush();

  const auto lines = file_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  const std::string& line = lines[0];
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"ts_ms\": "), std::string::npos);
  EXPECT_NE(line.find("\"mono_ms\": "), std::string::npos);
  EXPECT_NE(line.find("\"level\": \"info\""), std::string::npos);
  EXPECT_NE(line.find("\"sub\": \"svc\""), std::string::npos);
  EXPECT_NE(line.find("\"msg\": \"job finished\""), std::string::npos);
  EXPECT_NE(line.find("\"id\": \"job7\""), std::string::npos);
  EXPECT_NE(line.find("\"attempts\": 2"), std::string::npos);
  EXPECT_NE(line.find("\"seconds\": 0.25"), std::string::npos);
  EXPECT_NE(line.find("\"truncated\": false"), std::string::npos);
}

TEST(Log, LevelFilterSuppressesSinkButNotRing) {
  const std::string path = temp_path("log_filter.jsonl");
  {
    std::ofstream truncate(path, std::ios::trunc);
  }
  obs::Log log;
  log.set_sink_path(path);
  log.set_min_level(obs::LogLevel::kWarn);
  log.write(obs::LogLevel::kDebug, "t", "suppressed debug");
  log.write(obs::LogLevel::kInfo, "t", "suppressed info");
  log.write(obs::LogLevel::kWarn, "t", "visible warn");
  log.flush();

  EXPECT_EQ(file_lines(path).size(), 1u);
  EXPECT_EQ(log.lines_written(), 1u);
  EXPECT_EQ(log.ring_lines().size(), 3u);  // the ring keeps everything

  // A fatal line dumps the suppressed context, oldest first.
  log.write(obs::LogLevel::kFatal, "t", "boom");
  const auto lines = file_lines(path);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_NE(lines[0].find("visible warn"), std::string::npos);
  EXPECT_NE(lines[1].find("boom"), std::string::npos);
  EXPECT_NE(lines[2].find("suppressed debug"), std::string::npos);
  EXPECT_NE(lines[3].find("suppressed info"), std::string::npos);
}

TEST(Log, FlushRingDumpsSuppressedLinesOnce) {
  const std::string path = temp_path("log_flush_ring.jsonl");
  {
    std::ofstream truncate(path, std::ios::trunc);
  }
  obs::Log log;
  log.set_sink_path(path);
  log.set_min_level(obs::LogLevel::kError);
  log.write(obs::LogLevel::kInfo, "t", "ctx1");
  log.write(obs::LogLevel::kInfo, "t", "ctx2");
  log.flush_ring();
  log.flush_ring();  // already-flushed lines are not re-emitted
  const auto lines = file_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("ctx1"), std::string::npos);
  EXPECT_NE(lines[1].find("ctx2"), std::string::npos);
}

TEST(Log, EscapesControlCharactersAndQuotes) {
  obs::Log log;
  log.set_min_level(obs::LogLevel::kFatal);  // ring only, no stderr noise
  log.write(obs::LogLevel::kInfo, "t", "say \"hi\"\nback\\slash\ttab",
            {{"k", std::string("\x01")}});
  const auto lines = log.ring_lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("say \\\"hi\\\"\\nback\\\\slash\\ttab"),
            std::string::npos);
  EXPECT_NE(lines[0].find("\"k\": \"\\u0001\""), std::string::npos);
  // No raw control bytes may survive into the line.
  for (const char c : lines[0]) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
}

TEST(Log, NonFiniteDoublesStayParseable) {
  obs::Log log;
  log.set_min_level(obs::LogLevel::kFatal);
  log.write(obs::LogLevel::kInfo, "t", "m",
            {{"nan", std::numeric_limits<double>::quiet_NaN()},
             {"inf", std::numeric_limits<double>::infinity()}});
  const auto lines = log.ring_lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"nan\": \"nan\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"inf\": \"inf\""), std::string::npos);
}

TEST(Log, RingOverflowKeepsNewestOldestFirst) {
  obs::Log log;
  log.set_min_level(obs::LogLevel::kFatal);
  const std::size_t total = obs::Log::kRingCapacity + 40;
  for (std::size_t i = 0; i < total; ++i) {
    log.write(obs::LogLevel::kInfo, "t", "line" + std::to_string(i));
  }
  const auto lines = log.ring_lines();
  ASSERT_EQ(lines.size(), obs::Log::kRingCapacity);
  // Oldest surviving line is #40, newest is #(total-1), in order.
  EXPECT_NE(lines.front().find("\"msg\": \"line40\""), std::string::npos);
  EXPECT_NE(lines.back().find(
                "\"msg\": \"line" + std::to_string(total - 1) + "\""),
            std::string::npos);
}

TEST(Log, ConcurrentWritersNeverTearLines) {
  const std::string path = temp_path("log_concurrent.jsonl");
  {
    std::ofstream truncate(path, std::ios::trunc);
  }
  obs::Log log;
  log.set_sink_path(path);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        obs::LogLevel level =
            i % 2 == 0 ? obs::LogLevel::kInfo : obs::LogLevel::kWarn;
        log.write(level, "t", "m", {{"thread", t}, {"i", i}});
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  log.flush();

  const auto lines = file_lines(path);
  ASSERT_EQ(lines.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(log.lines_written(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  for (const std::string& line : lines) {
    // Every line is a complete, well-delimited object (no interleaving).
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"msg\": \"m\""), std::string::npos);
  }
}

#else  // FIXEDPART_OBS_ENABLED == 0

TEST(Log, CompilesToNoOpsWhenDisabled) {
  obs::Log log;
  log.set_min_level(obs::LogLevel::kDebug);
  log.write(obs::LogLevel::kFatal, "t", "ignored", {{"k", 1}});
  obs::log_info("t", "also ignored");
  EXPECT_EQ(log.lines_written(), 0u);
  EXPECT_TRUE(log.ring_lines().empty());
}

#endif

}  // namespace
