// Tests for the observability layer (ISSUE 4): the sharded metric
// registry, the scoped-span tracer, and the PassObserver hook — including
// the differential that pins the observer-based Table II statistics to
// the legacy pass_records post-processing bit-for-bit.
//
// The registry merge test is the concurrency surface: run this binary
// under TSan (ctest -L obs with FIXEDPART_SANITIZE=thread) to certify the
// lock-free hot path.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "experiments/context.hpp"
#include "experiments/pass_experiments.hpp"
#include "gen/netlist_gen.hpp"
#include "obs/pass_observer.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "part/balance.hpp"
#include "part/fm.hpp"
#include "part/initial.hpp"
#include "part/partition.hpp"
#include "util/rng.hpp"

namespace fixedpart {
namespace {

// ------------------------------------------------------------- Registry --

TEST(ObsRegistry, CounterAddAndScrape) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "built with FIXEDPART_OBS=OFF";
  obs::Registry reg;
  const obs::MetricId a = reg.counter("a");
  const obs::MetricId b = reg.counter("b");
  EXPECT_EQ(reg.counter("a"), a);  // idempotent registration
  reg.add(a, 3);
  reg.add(a);
  reg.add(b, -2);  // deltas may be negative even if metrics trend up
  const obs::Snapshot snap = reg.scrape();
  EXPECT_EQ(snap.counter("a"), 4);
  EXPECT_EQ(snap.counter("b"), -2);
  EXPECT_EQ(snap.counter("never-registered"), 0);
}

TEST(ObsRegistry, HistogramShapeIsSticky) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "built with FIXEDPART_OBS=OFF";
  obs::Registry reg;
  const obs::MetricId h = reg.histogram("h", 0.0, 10.0, 5);
  EXPECT_EQ(reg.histogram("h", 0.0, 10.0, 5), h);  // same shape: same id
  EXPECT_THROW(reg.histogram("h", 0.0, 10.0, 6), std::invalid_argument);
  EXPECT_THROW(reg.histogram("h", 0.0, 20.0, 5), std::invalid_argument);
}

TEST(ObsRegistry, HistogramClampsAndDropsNan) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "built with FIXEDPART_OBS=OFF";
  obs::Registry reg;
  const obs::MetricId h = reg.histogram("h", 0.0, 10.0, 5);
  reg.observe(h, -100.0);  // below lo: edge bin 0
  reg.observe(h, 0.5);     // bin 0
  reg.observe(h, 10.0);    // == hi: edge bin 4 (range is [lo, hi))
  reg.observe(h, 1e30);    // far above hi: edge bin 4
  reg.observe(h, std::numeric_limits<double>::quiet_NaN());
  const obs::Snapshot snap = reg.scrape();
  const obs::HistogramValue* v = snap.histogram("h");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->counts[0], 2u);
  EXPECT_EQ(v->counts[4], 2u);
  EXPECT_EQ(v->total, 4u);
  EXPECT_EQ(v->dropped, 1u);
  EXPECT_EQ(snap.histogram("never-registered"), nullptr);
}

TEST(ObsRegistry, CounterCapThrows) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "built with FIXEDPART_OBS=OFF";
  obs::Registry reg;
  for (std::uint32_t i = 0; i < obs::Registry::kMaxCounters; ++i) {
    reg.counter("c" + std::to_string(i));
  }
  EXPECT_THROW(reg.counter("one-too-many"), std::length_error);
}

TEST(ObsRegistry, ResetZeroesButKeepsRegistrations) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "built with FIXEDPART_OBS=OFF";
  obs::Registry reg;
  const obs::MetricId c = reg.counter("c");
  const obs::MetricId h = reg.histogram("h", 0.0, 1.0, 2);
  reg.add(c, 7);
  reg.observe(h, 0.2);
  reg.reset();
  const obs::Snapshot snap = reg.scrape();
  EXPECT_EQ(snap.counter("c"), 0);
  const obs::HistogramValue* v = snap.histogram("h");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->total, 0u);
  reg.add(c, 1);  // the id is still valid after reset
  EXPECT_EQ(reg.scrape().counter("c"), 1);
}

// The concurrency contract: per-thread shards merged on scrape must lose
// nothing — totals are exact once writers have joined. TSan-clean.
TEST(ObsRegistry, ThreadedMergeIsExact) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "built with FIXEDPART_OBS=OFF";
  obs::Registry reg;
  const obs::MetricId c = reg.counter("ops");
  const obs::MetricId h = reg.histogram("latency", 0.0, 1.0, 10);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, c, h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        reg.add(c, 1);
        reg.observe(h, static_cast<double>((i + t) % 10) / 10.0 + 0.05);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const obs::Snapshot snap = reg.scrape();
  EXPECT_EQ(snap.counter("ops"), kThreads * kPerThread);
  const obs::HistogramValue* v = snap.histogram("latency");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->total, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(v->dropped, 0u);
  std::uint64_t sum = 0;
  for (const std::uint64_t n : v->counts) sum += n;
  EXPECT_EQ(sum, v->total);
}

TEST(ObsRegistry, SnapshotJsonIsBalanced) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "built with FIXEDPART_OBS=OFF";
  obs::Registry reg;
  reg.add(reg.counter("fm.moves"), 12);
  reg.observe(reg.histogram("kept", 0.0, 1.0, 4), 0.3);
  const std::string json = reg.scrape().to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"fm.moves\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (in_string) {
      if (ch == '\\') ++i;
      else if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

// --------------------------------------------------------------- Tracer --

TEST(ObsTracer, InactiveTracerRecordsNothing) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.stop();
  const std::size_t before = tracer.event_count();
  { obs::ScopedSpan span("noop"); }
  EXPECT_EQ(tracer.event_count(), before);
}

TEST(ObsTracer, SpansCarryArgsAndNestingSurvives) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "built with FIXEDPART_OBS=OFF";
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.start();
  {
    obs::ScopedSpan outer("outer");
    outer.arg("level", static_cast<std::int64_t>(3)).arg("ratio", 0.5);
    { obs::ScopedSpan inner("inner"); }
  }
  tracer.stop();
  const std::vector<obs::TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  // Inner span destructs first, so it is recorded first.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_EQ(events[1].num_args, 2u);
  EXPECT_STREQ(events[1].args[0].key, "level");
  EXPECT_TRUE(events[1].args[0].is_int);
  EXPECT_EQ(events[1].args[0].int_value, 3);
  EXPECT_FALSE(events[1].args[1].is_int);
  EXPECT_DOUBLE_EQ(events[1].args[1].double_value, 0.5);
  // The inner span nests inside the outer on the timeline.
  EXPECT_GE(events[0].start_ns, events[1].start_ns);
  EXPECT_LE(events[0].start_ns + events[0].dur_ns,
            events[1].start_ns + events[1].dur_ns);
}

TEST(ObsTracer, TraceJsonIsWellFormedChromeFormat) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "built with FIXEDPART_OBS=OFF";
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.start();
  {
    obs::ScopedSpan a("fm.pass");
    a.arg("pass", static_cast<std::int64_t>(0));
  }
  { obs::ScopedSpan b("ml.project"); }
  tracer.stop();
  const std::string json = tracer.to_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"fm.pass\""), std::string::npos);
  EXPECT_NE(json.find("\"ml.project\""), std::string::npos);
  // Every event is a complete-event record with the mandatory keys.
  std::size_t ph = 0;
  for (std::size_t pos = json.find("\"ph\""); pos != std::string::npos;
       pos = json.find("\"ph\"", pos + 1)) {
    ++ph;
  }
  EXPECT_EQ(ph, 2u);
  EXPECT_NE(json.find("\"ts\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\""), std::string::npos);
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (in_string) {
      if (ch == '\\') ++i;
      else if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

// --------------------------------------------------------- PassObserver --

/// Records every event verbatim for replay against FmResult::pass_records.
class RecordingObserver final : public obs::PassObserver {
 public:
  void on_pass_begin(const obs::PassBegin& e) override { begins.push_back(e); }
  void on_move(const obs::MoveEvent& e) override { moves.push_back(e); }
  void on_pass_end(const obs::PassEnd& e) override { ends.push_back(e); }

  std::vector<obs::PassBegin> begins;
  std::vector<obs::MoveEvent> moves;
  std::vector<obs::PassEnd> ends;
};

gen::GeneratedCircuit obs_circuit() {
  gen::CircuitSpec spec;
  spec.name = "obs";
  spec.num_cells = 300;
  spec.num_nets = 340;
  spec.num_pads = 12;
  spec.seed = 19;
  return gen::generate_circuit(spec);
}

TEST(ObsPassObserver, EventsMatchPassRecordsExactly) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "built with FIXEDPART_OBS=OFF";
  const gen::GeneratedCircuit circuit = obs_circuit();
  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 10.0);
  part::PartitionState state(circuit.graph, 2);
  util::Rng rng(3);
  part::random_feasible_assignment(state, fixed, balance, rng);

  RecordingObserver observer;
  part::FmConfig config;
  config.observer = &observer;
  part::FmBipartitioner fm(circuit.graph, fixed, balance);
  const part::FmResult result = fm.refine(state, rng, config);

  ASSERT_GT(result.passes, 0);
  ASSERT_EQ(result.pass_records.size(),
            static_cast<std::size_t>(result.passes));
  ASSERT_EQ(observer.begins.size(), result.pass_records.size());
  ASSERT_EQ(observer.ends.size(), result.pass_records.size());

  std::int64_t observed_moves = 0;
  for (std::size_t p = 0; p < result.pass_records.size(); ++p) {
    const part::PassRecord& rec = result.pass_records[p];
    const obs::PassBegin& begin = observer.begins[p];
    const obs::PassEnd& end = observer.ends[p];
    EXPECT_EQ(begin.pass, static_cast<int>(p));
    EXPECT_EQ(begin.movable, rec.movable);
    EXPECT_EQ(begin.boundary_vertices, rec.boundary_vertices);
    EXPECT_EQ(begin.cut, rec.cut_before);
    EXPECT_EQ(end.pass, static_cast<int>(p));
    EXPECT_EQ(end.moves_performed, rec.moves_performed);
    EXPECT_EQ(end.best_prefix, rec.best_prefix);
    EXPECT_EQ(end.cut_before, rec.cut_before);
    EXPECT_EQ(end.cut_best, rec.cut_best);
    observed_moves += rec.moves_performed;
  }
  EXPECT_EQ(static_cast<std::int64_t>(observer.moves.size()), observed_moves);
  EXPECT_EQ(observed_moves, result.total_moves);

  // Per-move bookkeeping: the gain is the cut delta of that exact move.
  std::size_t index = 0;
  for (std::size_t p = 0; p < result.pass_records.size(); ++p) {
    hg::Weight cut = result.pass_records[p].cut_before;
    const auto n = static_cast<std::size_t>(
        result.pass_records[p].moves_performed);
    for (std::size_t m = 0; m < n; ++m, ++index) {
      const obs::MoveEvent& move = observer.moves[index];
      EXPECT_EQ(move.pass, static_cast<int>(p));
      EXPECT_EQ(move.move_index, static_cast<std::int32_t>(m));
      EXPECT_NE(move.from, move.to);
      EXPECT_EQ(move.cut, cut - move.gain);
      cut = move.cut;
    }
  }
}

TEST(ObsPassObserver, ObserverDoesNotPerturbRefinement) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "built with FIXEDPART_OBS=OFF";
  const gen::GeneratedCircuit circuit = obs_circuit();
  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 10.0);

  const auto solve = [&](obs::PassObserver* observer) {
    part::PartitionState state(circuit.graph, 2);
    util::Rng rng(9);
    part::random_feasible_assignment(state, fixed, balance, rng);
    part::FmConfig config;
    config.observer = observer;
    part::FmBipartitioner fm(circuit.graph, fixed, balance);
    return fm.refine(state, rng, config);
  };

  RecordingObserver observer;
  const part::FmResult with = solve(&observer);
  const part::FmResult without = solve(nullptr);
  EXPECT_EQ(with.final_cut, without.final_cut);
  EXPECT_EQ(with.passes, without.passes);
  EXPECT_EQ(with.total_moves, without.total_moves);
}

// The tentpole differential: the observer-backed Table II statistics must
// reproduce the legacy pass_records post-processing bit-for-bit.
TEST(ObsPassObserver, PassStatsObserverMatchesLegacyBitExact) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "built with FIXEDPART_OBS=OFF";
  gen::CircuitSpec spec;
  spec.name = "obs-diff";
  spec.num_cells = 300;
  spec.num_nets = 340;
  spec.num_pads = 12;
  spec.seed = 77;
  util::Rng context_rng(1);
  const exp::InstanceContext ctx = exp::make_context(spec, 1, 2.0, context_rng);

  exp::PassStatsConfig config;
  config.percentages = {0.0, 20.0};
  config.runs = 3;

  config.use_observer = true;
  util::Rng rng_observer(42);
  const auto via_observer = exp::run_pass_stats(ctx, config, rng_observer);

  config.use_observer = false;
  util::Rng rng_legacy(42);
  const auto via_records = exp::run_pass_stats(ctx, config, rng_legacy);

  ASSERT_EQ(via_observer.size(), via_records.size());
  for (std::size_t i = 0; i < via_observer.size(); ++i) {
    const exp::PassStatsRow& a = via_observer[i];
    const exp::PassStatsRow& b = via_records[i];
    EXPECT_EQ(a.pct_fixed, b.pct_fixed);
    EXPECT_EQ(a.avg_passes, b.avg_passes);
    EXPECT_EQ(a.avg_pct_moved, b.avg_pct_moved);
    EXPECT_EQ(a.avg_pct_performed, b.avg_pct_performed);
    ASSERT_EQ(a.prefix_position_deciles.size(),
              b.prefix_position_deciles.size());
    for (std::size_t d = 0; d < a.prefix_position_deciles.size(); ++d) {
      EXPECT_EQ(a.prefix_position_deciles[d], b.prefix_position_deciles[d]);
    }
  }
}

}  // namespace
}  // namespace fixedpart
