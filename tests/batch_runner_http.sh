#!/usr/bin/env bash
# Socket-level E2E for the embedded metrics endpoint (ctest labels:
# obs-http, svc). Starts batch_runner --listen=0 on a fleet heavy enough
# to outlive the probes and, with bash's /dev/tcp as a curl-free HTTP
# client, checks every route live: /healthz, /metrics (Prometheus 0.0.4
# with the svc gauge/label families), /progress, /metrics.json, and a 404.
# Also requires the periodic --metrics-out files to exist afterwards.
#
# Usage: batch_runner_http.sh /path/to/batch_runner
set -euo pipefail

runner=${1:?usage: batch_runner_http.sh /path/to/batch_runner}
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
cd "$workdir"

# Ten default-scale multistart jobs: a couple of seconds of fleet on two
# workers, plenty for a handful of loopback GETs.
for j in 0 1 2 3 4 5 6 7 8 9; do
  circuit=$((1 + j % 2))
  printf '{"id": "e2e%d", "circuit": %d, "scale": "default", "regime": "rand", "fixed_pct": 10.0, "starts": 6, "seed": %d}\n' \
    "$j" "$circuit" $((3000 + j))
done > jobs.jsonl

"$runner" --manifest=jobs.jsonl --workers=2 --listen=0 \
  --metrics-out=metrics.json --metrics-interval=0.2 --quiet \
  > run.log 2> run.err &
runner_pid=$!

# Wait for the listen line (or the OBS=OFF notice, which makes the whole
# endpoint surface compile out — nothing to probe, trivially pass).
port=""
for _ in $(seq 1 100); do
  if grep -q "FIXEDPART_OBS=OFF" run.log 2>/dev/null; then
    wait "$runner_pid"
    echo "PASS: batch_runner http (endpoint compiled out, OBS=OFF)"
    exit 0
  fi
  port=$(sed -n 's/.*listening on 127.0.0.1:\([0-9]*\).*/\1/p' run.log | head -n1)
  [ -n "$port" ] && break
  sleep 0.05
done
[ -n "$port" ] || { echo "FAIL: no listen line in run.log"; cat run.log run.err; exit 1; }

# One GET via bash's /dev/tcp; response lands in $reply.
get() {
  local path=$1
  exec 3<>"/dev/tcp/127.0.0.1/$port"
  printf 'GET %s HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n' "$path" >&3
  reply=$(cat <&3)
  exec 3<&-
}

get /healthz
echo "$reply" | grep -q "HTTP/1.1 200 OK" || { echo "FAIL: /healthz status"; exit 1; }
echo "$reply" | grep -q "^ok" || { echo "FAIL: /healthz body"; exit 1; }

get /metrics
echo "$reply" | grep -q "HTTP/1.1 200 OK" || { echo "FAIL: /metrics status"; exit 1; }
echo "$reply" | grep -q "text/plain; version=0.0.4" || { echo "FAIL: /metrics content type"; exit 1; }
echo "$reply" | grep -q "^# TYPE svc_queue_depth gauge" || { echo "FAIL: no svc_queue_depth gauge"; exit 1; }
echo "$reply" | grep -q "^# TYPE svc_inflight_workers gauge" || { echo "FAIL: no svc_inflight_workers gauge"; exit 1; }
echo "$reply" | grep -q "^# TYPE svc_jobs counter" || { echo "FAIL: no svc_jobs counter family"; exit 1; }
echo "$reply" | grep -q 'svc_jobs{state="ok"}' || { echo "FAIL: no labeled svc_jobs member"; exit 1; }

get /progress
echo "$reply" | grep -q "HTTP/1.1 200 OK" || { echo "FAIL: /progress status"; exit 1; }
echo "$reply" | grep -q '"total": 10' || { echo "FAIL: /progress total"; exit 1; }
echo "$reply" | grep -q '"workers": 2' || { echo "FAIL: /progress workers"; exit 1; }

get /metrics.json
echo "$reply" | grep -q "HTTP/1.1 200 OK" || { echo "FAIL: /metrics.json status"; exit 1; }
echo "$reply" | grep -q '"counters"' || { echo "FAIL: /metrics.json body"; exit 1; }

get /not-a-route
echo "$reply" | grep -q "HTTP/1.1 404" || { echo "FAIL: expected 404"; exit 1; }

wait "$runner_pid" || { echo "FAIL: fleet exited nonzero"; cat run.log run.err; exit 1; }

# The exporter (periodic + final tick) must have left both formats behind.
[ -s metrics.json ] || { echo "FAIL: metrics.json missing"; exit 1; }
[ -s metrics.json.prom ] || { echo "FAIL: metrics.json.prom missing"; exit 1; }
grep -q '"counters"' metrics.json || { echo "FAIL: metrics.json malformed"; exit 1; }
grep -q "^# TYPE svc_jobs counter" metrics.json.prom || { echo "FAIL: metrics.json.prom malformed"; exit 1; }

echo "PASS: batch_runner http endpoint"
