#include "gen/derive.hpp"

#include <gtest/gtest.h>

#include "gen/netlist_gen.hpp"
#include "hg/stats.hpp"

namespace fixedpart::gen {
namespace {

GeneratedCircuit circuit() {
  CircuitSpec spec;
  spec.name = "tst";
  spec.num_cells = 900;
  spec.num_nets = 1000;
  spec.num_pads = 36;
  spec.seed = 13;
  return generate_circuit(spec);
}

TEST(Block, ContainsAndHalving) {
  const Block b{0.0, 0.0, 10.0, 8.0};
  EXPECT_TRUE(b.contains(0.0, 0.0));
  EXPECT_TRUE(b.contains(9.99, 7.99));
  EXPECT_FALSE(b.contains(10.0, 4.0));
  EXPECT_FALSE(b.contains(-0.1, 4.0));
  const Block left = b.half(/*vertical=*/true, /*low=*/true);
  EXPECT_DOUBLE_EQ(left.xhi, 5.0);
  EXPECT_DOUBLE_EQ(left.yhi, 8.0);
  const Block top = b.half(/*vertical=*/false, /*low=*/false);
  EXPECT_DOUBLE_EQ(top.ylo, 4.0);
}

TEST(Derive, FullDieKeepsAllCellsMovable) {
  const auto c = circuit();
  const auto derived = derive_block_instance(c, full_die(c),
                                             CutDirection::kVertical, 2.0,
                                             "tstA_V");
  // All cells are inside the die; only pads become terminals.
  EXPECT_EQ(derived.movable_cells, 900);
  const hg::InstanceStats stats = hg::compute_stats(derived.instance.graph);
  EXPECT_EQ(stats.num_cells, 900);
  EXPECT_GT(stats.num_pads, 0);
  EXPECT_LE(stats.num_pads, 36);
}

TEST(Derive, TerminalsAreZeroAreaAndFixedToNearestSide) {
  const auto c = circuit();
  const Block left_half = full_die(c).half(true, true);
  const auto derived = derive_block_instance(c, left_half,
                                             CutDirection::kHorizontal, 2.0,
                                             "tstB_H");
  const auto& g = derived.instance.graph;
  const auto& fixed = derived.instance.fixed;
  int terminals = 0;
  for (hg::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.is_pad(v)) {
      ++terminals;
      EXPECT_EQ(g.vertex_weight(v), 0);
      EXPECT_TRUE(fixed.is_fixed(v));
    } else {
      EXPECT_FALSE(fixed.is_restricted(v));
    }
  }
  EXPECT_GT(terminals, 0);
  // Movable cells + terminals account for every vertex.
  EXPECT_EQ(derived.movable_cells + terminals, g.num_vertices());
  g.validate();
}

TEST(Derive, CutlineSidesBothPopulated) {
  const auto c = circuit();
  const auto derived = derive_block_instance(c, full_die(c),
                                             CutDirection::kVertical, 2.0,
                                             "tstA_V");
  const auto& fixed = derived.instance.fixed;
  int side[2] = {0, 0};
  for (hg::VertexId v = 0; v < derived.instance.graph.num_vertices(); ++v) {
    const hg::PartitionId p = fixed.fixed_part(v);
    if (p != hg::kNoPartition) ++side[p];
  }
  EXPECT_GT(side[0], 0);
  EXPECT_GT(side[1], 0);
}

TEST(Derive, SubBlockHasPropagatedCellTerminals) {
  const auto c = circuit();
  const Block quadrant = full_die(c).half(true, true).half(false, true);
  const auto derived = derive_block_instance(c, quadrant,
                                             CutDirection::kVertical, 2.0,
                                             "tstC_V");
  // A quadrant has roughly a quarter of the cells...
  EXPECT_GT(derived.movable_cells, 900 / 8);
  EXPECT_LT(derived.movable_cells, 900 / 2);
  // ...and many propagated terminals (outside cells), more than pads alone.
  const hg::InstanceStats stats = hg::compute_stats(derived.instance.graph);
  EXPECT_GT(stats.num_pads, 36 / 4);
  // "More pad vertices than external nets" is possible per the paper; at
  // minimum every external net touches a terminal.
  EXPECT_GT(stats.num_external_nets, 0);
}

TEST(Derive, FamilyProducesEightNamedInstances) {
  const auto c = circuit();
  const auto family = derive_family(c, 2.0);
  ASSERT_EQ(family.size(), 8u);
  EXPECT_EQ(family[0].name, "tstA_V");
  EXPECT_EQ(family[1].name, "tstA_H");
  EXPECT_EQ(family[6].name, "tstD_V");
  // Block sizes shrink A -> D.
  EXPECT_GT(family[0].movable_cells, family[2].movable_cells);
  EXPECT_GT(family[2].movable_cells, family[4].movable_cells);
  EXPECT_GT(family[4].movable_cells, family[6].movable_cells);
  // V/H variants of the same block share the movable cell set size.
  EXPECT_EQ(family[0].movable_cells, family[1].movable_cells);
}

TEST(Derive, NamesAlignWithGraph) {
  const auto c = circuit();
  const auto derived = derive_block_instance(
      c, full_die(c).half(true, true), CutDirection::kVertical, 2.0, "x");
  EXPECT_EQ(static_cast<hg::VertexId>(derived.instance.names.size()),
            derived.instance.graph.num_vertices());
  // Cell names start with 'c', terminal names with 't'.
  for (hg::VertexId v = 0; v < derived.instance.graph.num_vertices(); ++v) {
    const char head = derived.instance.names[v][0];
    if (derived.instance.graph.is_pad(v)) {
      EXPECT_EQ(head, 't');
    } else {
      EXPECT_EQ(head, 'c');
    }
  }
}

}  // namespace
}  // namespace fixedpart::gen
