// Edge-case sweep across the engines: degenerate graphs, zero-weight
// vertices, extreme configurations.

#include <gtest/gtest.h>

#include <vector>

#include "hg/builder.hpp"
#include "ml/multilevel.hpp"
#include "part/fm.hpp"
#include "part/initial.hpp"
#include "part/kway_fm.hpp"
#include "util/errors.hpp"
#include "util/rng.hpp"

namespace fixedpart {
namespace {

using part::BalanceConstraint;
using part::FmBipartitioner;
using part::FmConfig;
using part::PartitionState;

TEST(EdgeCases, FmOnEmptyGraph) {
  hg::HypergraphBuilder b;
  const hg::Hypergraph g = b.build();
  const hg::FixedAssignment fixed(0, 2);
  const auto balance = BalanceConstraint::relative(g, 2, 10.0);
  FmBipartitioner fm(g, fixed, balance);
  PartitionState state(g, 2);
  util::Rng rng(1);
  const auto result = fm.refine(state, rng, FmConfig{});
  EXPECT_EQ(result.final_cut, 0);
  EXPECT_EQ(result.total_moves, 0);
}

TEST(EdgeCases, FmOnSingleVertex) {
  hg::HypergraphBuilder b;
  b.add_vertex(5);
  const hg::Hypergraph g = b.build();
  const hg::FixedAssignment fixed(1, 2);
  const auto balance = BalanceConstraint::relative(g, 2, 100.0);
  FmBipartitioner fm(g, fixed, balance);
  PartitionState state(g, 2);
  state.assign(0, 0);
  util::Rng rng(2);
  EXPECT_NO_THROW(fm.refine(state, rng, FmConfig{}));
}

TEST(EdgeCases, ZeroWeightVerticesMoveFreely) {
  // Pads have zero area; FM must be able to move them across any balance.
  hg::HypergraphBuilder b;
  b.add_vertex(10);
  b.add_vertex(10);
  const hg::VertexId pad = b.add_vertex(0, /*is_pad=*/true);
  b.add_net(std::vector<hg::VertexId>{0, pad});
  b.add_net(std::vector<hg::VertexId>{1, pad});
  const hg::Hypergraph g = b.build();
  const hg::FixedAssignment fixed(3, 2);
  const auto balance = BalanceConstraint::relative(g, 2, 0.0);  // caps 10/10
  FmBipartitioner fm(g, fixed, balance);
  PartitionState state(g, 2);
  state.assign(0, 0);
  state.assign(1, 1);
  state.assign(pad, 1);  // cut: net {0,pad}
  util::Rng rng(3);
  const auto result = fm.refine(state, rng, FmConfig{});
  // The heavy cells are frozen by the exact bisection but the pad always
  // fits; one of the two nets must always stay cut.
  EXPECT_EQ(result.final_cut, 1);
}

TEST(EdgeCases, ZeroWeightNetContributesNothing) {
  hg::HypergraphBuilder b;
  b.add_vertex(1);
  b.add_vertex(1);
  b.add_net(std::vector<hg::VertexId>{0, 1}, 0);
  const hg::Hypergraph g = b.build();
  PartitionState state(g, 2);
  state.assign(0, 0);
  state.assign(1, 1);
  EXPECT_EQ(state.cut(), 0);
  const hg::FixedAssignment fixed(2, 2);
  const auto balance = BalanceConstraint::relative(g, 2, 100.0);
  FmBipartitioner fm(g, fixed, balance);
  util::Rng rng(4);
  EXPECT_NO_THROW(fm.refine(state, rng, FmConfig{}));
}

TEST(EdgeCases, MaxPassesOneStopsAfterOnePass) {
  util::Rng gen(5);
  hg::HypergraphBuilder b;
  for (int i = 0; i < 40; ++i) b.add_vertex(1);
  for (int e = 0; e < 80; ++e) {
    std::vector<hg::VertexId> pins;
    for (int d = 0; d < 3; ++d) {
      pins.push_back(static_cast<hg::VertexId>(gen.next_below(40)));
    }
    b.add_net(pins);
  }
  const hg::Hypergraph g = b.build();
  const hg::FixedAssignment fixed(40, 2);
  const auto balance = BalanceConstraint::relative(g, 2, 10.0);
  FmBipartitioner fm(g, fixed, balance);
  PartitionState state(g, 2);
  util::Rng rng(6);
  part::random_feasible_assignment(state, fixed, balance, rng);
  FmConfig config;
  config.max_passes = 1;
  const auto result = fm.refine(state, rng, config);
  EXPECT_EQ(result.passes, 1);
}

TEST(EdgeCases, KwayDeterministicForSeed) {
  util::Rng gen(7);
  hg::HypergraphBuilder b;
  for (int i = 0; i < 50; ++i) b.add_vertex(1);
  for (int e = 0; e < 100; ++e) {
    std::vector<hg::VertexId> pins;
    for (int d = 0; d < 3; ++d) {
      pins.push_back(static_cast<hg::VertexId>(gen.next_below(50)));
    }
    b.add_net(pins);
  }
  const hg::Hypergraph g = b.build();
  const hg::FixedAssignment fixed(50, 3);
  const auto balance = BalanceConstraint::relative(g, 3, 20.0);
  part::KwayFmRefiner refiner(g, fixed, balance);
  auto run_once = [&](std::uint64_t seed) {
    PartitionState state(g, 3);
    util::Rng rng(seed);
    part::random_feasible_assignment(state, fixed, balance, rng);
    refiner.refine(state, rng, part::KwayConfig{});
    return std::vector<hg::PartitionId>(state.assignment().begin(),
                                        state.assignment().end());
  };
  EXPECT_EQ(run_once(77), run_once(77));
}

TEST(EdgeCases, MultilevelOnDisconnectedGraph) {
  // Two components with no nets between them: optimal cut 0 under a
  // loose balance.
  hg::HypergraphBuilder b;
  for (int i = 0; i < 200; ++i) b.add_vertex(1);
  for (int c = 0; c < 2; ++c) {
    const int base = 100 * c;
    for (int e = 0; e < 150; ++e) {
      util::Rng pick(static_cast<std::uint64_t>(c * 1000 + e));
      std::vector<hg::VertexId> pins;
      for (int d = 0; d < 3; ++d) {
        pins.push_back(base + static_cast<hg::VertexId>(pick.next_below(100)));
      }
      b.add_net(pins);
    }
  }
  const hg::Hypergraph g = b.build();
  const hg::FixedAssignment fixed(200, 2);
  const auto balance = BalanceConstraint::relative(g, 2, 10.0);
  const ml::MultilevelPartitioner partitioner(g, fixed, balance);
  util::Rng rng(8);
  const auto result = partitioner.best_of(4, rng, ml::MultilevelConfig{});
  EXPECT_EQ(result.cut, 0);
}

TEST(EdgeCases, AllVerticesInOneGiantNet) {
  hg::HypergraphBuilder b;
  std::vector<hg::VertexId> pins;
  for (int i = 0; i < 64; ++i) pins.push_back(b.add_vertex(1));
  b.add_net(pins);
  const hg::Hypergraph g = b.build();
  const hg::FixedAssignment fixed(64, 2);
  const auto balance = BalanceConstraint::relative(g, 2, 5.0);
  const ml::MultilevelPartitioner partitioner(g, fixed, balance);
  util::Rng rng(9);
  const auto result = partitioner.run(rng, ml::MultilevelConfig{});
  // A single spanning net is always cut by any balanced bipartition.
  EXPECT_EQ(result.cut, 1);
}

TEST(EdgeCases, ParallelNetsAccumulateWeightInCoarsening) {
  // Many duplicate 2-pin nets between two hubs: multilevel must still
  // find the obvious split (hubs apart would cut everything).
  hg::HypergraphBuilder b;
  for (int i = 0; i < 32; ++i) b.add_vertex(1);
  for (int d = 0; d < 20; ++d) b.add_net(std::vector<hg::VertexId>{0, 1});
  for (int i = 2; i < 32; ++i) {
    b.add_net(std::vector<hg::VertexId>{i % 2, i});
  }
  const hg::Hypergraph g = b.build();
  const hg::FixedAssignment fixed(32, 2);
  const auto balance = BalanceConstraint::relative(g, 2, 20.0);
  const ml::MultilevelPartitioner partitioner(g, fixed, balance);
  util::Rng rng(10);
  const auto result = partitioner.best_of(4, rng, ml::MultilevelConfig{});
  // Hubs 0 and 1 must land together (splitting them costs 20).
  EXPECT_EQ(result.assignment[0], result.assignment[1]);
}

// Degenerate instances driven through the *full* multilevel pipeline
// (coarsen, coarse multistart, uncoarsen+refine) — ISSUE 2 satellite.

TEST(EdgeCases, MultilevelOnEmptyHypergraph) {
  hg::HypergraphBuilder b;
  const hg::Hypergraph g = b.build();
  const hg::FixedAssignment fixed(0, 2);
  const auto balance = BalanceConstraint::relative(g, 2, 10.0);
  const ml::MultilevelPartitioner partitioner(g, fixed, balance);
  util::Rng rng(41);
  const auto result = partitioner.best_of(4, rng, ml::MultilevelConfig{});
  EXPECT_EQ(result.cut, 0);
  EXPECT_TRUE(result.assignment.empty());
  EXPECT_FALSE(result.truncated);
}

TEST(EdgeCases, MultilevelOnSingleVertex) {
  hg::HypergraphBuilder b;
  b.add_vertex(3);
  const hg::Hypergraph g = b.build();
  const hg::FixedAssignment fixed(1, 2);
  const auto balance = BalanceConstraint::relative(g, 2, 200.0);
  const ml::MultilevelPartitioner partitioner(g, fixed, balance);
  util::Rng rng(42);
  const auto result = partitioner.run(rng, ml::MultilevelConfig{});
  EXPECT_EQ(result.cut, 0);
  ASSERT_EQ(result.assignment.size(), 1u);
  EXPECT_LT(result.assignment[0], 2);
}

TEST(EdgeCases, MultilevelWithAllVerticesFixed) {
  // Zero freedom: the pipeline must reproduce exactly the forced
  // assignment and its cut, with nothing for coarsening or FM to do.
  hg::HypergraphBuilder b;
  for (int i = 0; i < 16; ++i) b.add_vertex(1);
  for (int i = 0; i + 1 < 16; ++i) {
    b.add_net(std::vector<hg::VertexId>{static_cast<hg::VertexId>(i),
                                        static_cast<hg::VertexId>(i + 1)});
  }
  const hg::Hypergraph g = b.build();
  hg::FixedAssignment fixed(16, 2);
  for (hg::VertexId v = 0; v < 16; ++v) {
    fixed.fix(v, static_cast<hg::PartitionId>(v % 2));
  }
  const auto balance = BalanceConstraint::relative(g, 2, 10.0);
  const ml::MultilevelPartitioner partitioner(g, fixed, balance);
  util::Rng rng(43);
  const auto result = partitioner.best_of(3, rng, ml::MultilevelConfig{});
  ASSERT_EQ(result.assignment.size(), 16u);
  for (hg::VertexId v = 0; v < 16; ++v) {
    EXPECT_EQ(result.assignment[v], static_cast<hg::PartitionId>(v % 2));
  }
  // The alternating chain cuts every one of the 15 nets.
  EXPECT_EQ(result.cut, 15);
}

TEST(EdgeCases, MultilevelWithAllNetsZeroWeight) {
  hg::HypergraphBuilder b;
  for (int i = 0; i < 24; ++i) b.add_vertex(1);
  for (int i = 0; i + 1 < 24; ++i) {
    b.add_net(std::vector<hg::VertexId>{static_cast<hg::VertexId>(i),
                                        static_cast<hg::VertexId>(i + 1)},
              /*weight=*/0);
  }
  const hg::Hypergraph g = b.build();
  const hg::FixedAssignment fixed(24, 2);
  const auto balance = BalanceConstraint::relative(g, 2, 10.0);
  const ml::MultilevelPartitioner partitioner(g, fixed, balance);
  util::Rng rng(44);
  const auto result = partitioner.best_of(3, rng, ml::MultilevelConfig{});
  // Every cut net costs nothing, so any balanced assignment is optimal.
  EXPECT_EQ(result.cut, 0);
  ASSERT_EQ(result.assignment.size(), 24u);
}

TEST(EdgeCases, MultilevelOnProvablyInfeasibleFixedAssignment) {
  // Both heavy vertices pinned to part 0 overflow a 0%-tolerance side.
  // Default config: best-effort, complete assignment, fixed respected.
  // preflight = true: a structured InfeasibleError instead.
  hg::HypergraphBuilder b;
  b.add_vertex(10);
  b.add_vertex(10);
  b.add_vertex(1);
  b.add_vertex(1);
  b.add_net(std::vector<hg::VertexId>{0, 2});
  b.add_net(std::vector<hg::VertexId>{1, 3});
  const hg::Hypergraph g = b.build();
  hg::FixedAssignment fixed(4, 2);
  fixed.fix(0, 0);
  fixed.fix(1, 0);
  const auto balance = BalanceConstraint::relative(g, 2, 0.0);
  const ml::MultilevelPartitioner partitioner(g, fixed, balance);
  util::Rng rng(45);

  const auto result = partitioner.run(rng, ml::MultilevelConfig{});
  ASSERT_EQ(result.assignment.size(), 4u);
  EXPECT_EQ(result.assignment[0], 0);
  EXPECT_EQ(result.assignment[1], 0);

  ml::MultilevelConfig strict;
  strict.preflight = true;
  EXPECT_THROW(partitioner.run(rng, strict), util::InfeasibleError);
}

}  // namespace
}  // namespace fixedpart
