#!/usr/bin/env bash
# End-to-end crash/drain/recovery for partitiond (ctest label: serve).
# Drives the daemon over bash's /dev/tcp (curl-free) through its whole
# lifecycle:
#
#   1. overload a 1-worker/capacity-2 daemon with slow jobs: some POSTs
#      are accepted (202), the rest are shed (429 + Retry-After);
#   2. wait for >= 2 journaled completions, then kill -9 mid-fleet;
#   3. restart on the same --journal/--spool-dir: every pre-kill result
#      must be re-served byte-identically, accepted-but-unfinished jobs
#      re-enqueued and finished;
#   4. a resubmission of finished work answers 200 from the cache;
#   5. SIGTERM drains the daemon: it must exit 0.
#
# Usage: partitiond_restart.sh /path/to/partitiond
set -euo pipefail

daemon=${1:?usage: partitiond_restart.sh /path/to/partitiond}
workdir=$(mktemp -d)
cleanup() {
  [ -n "${daemon_pid:-}" ] && kill -9 "$daemon_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT
cd "$workdir"

start_daemon() {
  "$daemon" --listen=0 --port-file=port.txt --workers=1 --queue-capacity=2 \
    --journal=jobs.journal --spool-dir=spool --test-slow-ms=400 \
    --default-budget=20 --max-attempts=1 "$@" > daemon.log 2> daemon.err &
  daemon_pid=$!
  port=""
  for _ in $(seq 1 200); do
    # Under FIXEDPART_OBS=OFF the HTTP endpoint compiles out: nothing to
    # probe, trivially pass (same convention as batch_runner_http.sh).
    if grep -q "FIXEDPART_OBS=OFF" daemon.log 2>/dev/null; then
      wait "$daemon_pid"
      daemon_pid=""
      echo "PASS: partitiond restart (endpoint compiled out, OBS=OFF)"
      exit 0
    fi
    [ -s port.txt ] && { port=$(head -n1 port.txt); break; }
    sleep 0.05
  done
  [ -n "$port" ] || { echo "FAIL: daemon never wrote port.txt"; cat daemon.log daemon.err; exit 1; }
}

# One HTTP exchange via /dev/tcp; the full response lands in $reply.
req() {
  local method=$1 path=$2 body=${3:-}
  exec 3<>"/dev/tcp/127.0.0.1/$port"
  printf '%s %s HTTP/1.1\r\nHost: 127.0.0.1\r\nContent-Length: %s\r\nConnection: close\r\n\r\n%s' \
    "$method" "$path" "${#body}" "$body" >&3
  reply=$(cat <&3)
  exec 3<&-
}

# Extract the 32-hex job id out of $reply.
reply_id() {
  echo "$reply" | sed -n 's/.*"id": "\([0-9a-f]\{32\}\)".*/\1/p' | head -n1
}

rm -f port.txt
start_daemon

# --- 1. overload: bounded queue sheds with 429 + Retry-After -------------
accepted=0
shed=0
ids=""
for seed in 1 2 3 4 5 6; do
  req POST "/partition?seed=$seed" '{"circuit": 1, "scale": "smoke", "starts": 1}'
  if echo "$reply" | grep -q "HTTP/1.1 202"; then
    accepted=$((accepted + 1))
    ids="$ids $(reply_id)"
  elif echo "$reply" | grep -q "HTTP/1.1 429"; then
    shed=$((shed + 1))
    echo "$reply" | grep -q "Retry-After: [0-9]" || { echo "FAIL: 429 without Retry-After"; exit 1; }
    echo "$reply" | grep -q "retry_after_seconds" || { echo "FAIL: 429 body lacks retry_after_seconds"; exit 1; }
  else
    echo "FAIL: unexpected submit response:"; echo "$reply"; exit 1
  fi
done
[ "$accepted" -ge 1 ] || { echo "FAIL: nothing accepted under overload"; exit 1; }
[ "$shed" -ge 1 ] || { echo "FAIL: nothing shed under overload (accepted=$accepted)"; exit 1; }
echo "overload: accepted=$accepted shed=$shed"

# --- 2. let >= 2 jobs reach the journal, then kill -9 mid-fleet ----------
done_count=0
for _ in $(seq 1 300); do
  done_count=$(grep -c '"event": "done"' jobs.journal 2>/dev/null || true)
  done_count=${done_count:-0}
  [ "$done_count" -ge 2 ] && break
  sleep 0.05
done
[ "$done_count" -ge 2 ] || { echo "FAIL: fewer than 2 journaled completions"; cat daemon.log daemon.err; exit 1; }

# Record every already-finished job's response bytes (status + body line).
pre_kill=""
for id in $ids; do
  req GET "/jobs/$id"
  if echo "$reply" | grep -q '"state": "done"'; then
    line=$(echo "$reply" | grep '"state": "done"')
    pre_kill="$pre_kill$id $line
"
  fi
done
[ -n "$pre_kill" ] || { echo "FAIL: journal has done events but no pollable done job"; exit 1; }

kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true

# --- 3. restart on the same journal/spool: recovery ----------------------
rm -f port.txt
start_daemon

# Every pre-kill result must come back byte-identical from the journal.
while IFS=' ' read -r id expect; do
  [ -n "$id" ] || continue
  req GET "/jobs/$id"
  echo "$reply" | grep -q "HTTP/1.1 200" || { echo "FAIL: $id lost across kill -9"; echo "$reply"; exit 1; }
  got=$(echo "$reply" | grep '"state": "done"' || true)
  [ "$got" = "$expect" ] || {
    echo "FAIL: $id changed across restart"
    echo "  before: $expect"
    echo "  after:  $got"
    exit 1
  }
done <<< "$pre_kill"
echo "recovery: pre-kill results re-served byte-identically"

# Accepted-but-unfinished jobs were re-enqueued; wait for all accepted
# submissions to reach a terminal state.
for id in $ids; do
  ok=0
  for _ in $(seq 1 600); do
    req GET "/jobs/$id"
    if echo "$reply" | grep -q '"state": "done"'; then ok=1; break; fi
    sleep 0.05
  done
  [ "$ok" = 1 ] || { echo "FAIL: recovered job $id never finished"; echo "$reply"; exit 1; }
done
echo "recovery: every accepted job reached done"

# --- 4. resubmitting finished work is a cache hit (200, no re-run) -------
req POST "/partition?seed=1" '{"circuit": 1, "scale": "smoke", "starts": 1}'
echo "$reply" | grep -q "HTTP/1.1 200" || { echo "FAIL: resubmission was not a cache hit"; echo "$reply"; exit 1; }
echo "$reply" | grep -q '"state": "done"' || { echo "FAIL: cache hit without the result"; exit 1; }

req GET /progress
echo "$reply" | grep -q '"cache_hits": 1' || { echo "FAIL: /progress cache_hits"; echo "$reply"; exit 1; }

# --- 5. SIGTERM drains with exit code 0 ----------------------------------
kill -TERM "$daemon_pid"
rc=0
wait "$daemon_pid" || rc=$?
[ "$rc" = 0 ] || { echo "FAIL: drain exited $rc"; cat daemon.log daemon.err; exit 1; }
grep -q "partitiond: drained, exiting" daemon.log || { echo "FAIL: no drain notice"; cat daemon.log; exit 1; }

echo "PASS: partitiond overload/kill/recover/drain"
