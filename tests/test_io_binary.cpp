#include "hg/io_binary.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "gen/netlist_gen.hpp"
#include "gen/stream_gen.hpp"
#include "gen/suite.hpp"
#include "hg/builder.hpp"
#include "hg/io_hmetis.hpp"
#include "ml/multilevel.hpp"
#include "part/balance.hpp"
#include "util/env.hpp"
#include "util/errors.hpp"
#include "util/rng.hpp"

namespace fixedpart::hg {
namespace {

std::string temp_path(const std::string& tag) {
  return testing::TempDir() + "fpbin_" + tag + "_" +
         std::to_string(static_cast<long>(::getpid())) + ".fpbin";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A small instance exercising every section: multi-resource weights, a
/// pad, fixed masks, k=4.
BinaryInstance sample_instance() {
  HypergraphBuilder b(2);
  const Weight w0[] = {10, 1};
  const Weight w1[] = {20, 2};
  const Weight w2[] = {0, 0};
  const Weight w3[] = {7, 3};
  b.add_vertex(std::span<const Weight>(w0, 2));
  b.add_vertex(std::span<const Weight>(w1, 2));
  b.add_vertex(std::span<const Weight>(w2, 2), /*is_pad=*/true);
  b.add_vertex(std::span<const Weight>(w3, 2));
  b.add_net(std::vector<VertexId>{0, 1}, 1);
  b.add_net(std::vector<VertexId>{1, 2, 3}, 3);
  b.add_net(std::vector<VertexId>{0, 3}, 2);
  BinaryInstance inst;
  inst.graph = b.build();
  inst.num_parts = 4;
  inst.fixed = FixedAssignment(4, 4);
  inst.fixed.fix(2, 1);
  inst.fixed.restrict_to(1, 0b0101);
  return inst;
}

void expect_graphs_equal(const Hypergraph& a, const Hypergraph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_nets(), b.num_nets());
  ASSERT_EQ(a.num_pins(), b.num_pins());
  ASSERT_EQ(a.num_resources(), b.num_resources());
  EXPECT_EQ(a.num_pads(), b.num_pads());
  EXPECT_EQ(a.max_weighted_vertex_degree(), b.max_weighted_vertex_degree());
  for (int r = 0; r < a.num_resources(); ++r) {
    EXPECT_EQ(a.total_weight(r), b.total_weight(r));
  }
  for (NetId e = 0; e < a.num_nets(); ++e) {
    ASSERT_EQ(a.net_size(e), b.net_size(e)) << "net " << e;
    EXPECT_EQ(a.net_weight(e), b.net_weight(e));
    const auto pa = a.pins(e);
    const auto pb = b.pins(e);
    EXPECT_TRUE(std::equal(pa.begin(), pa.end(), pb.begin(), pb.end()));
  }
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    ASSERT_EQ(a.degree(v), b.degree(v)) << "vertex " << v;
    EXPECT_EQ(a.is_pad(v), b.is_pad(v));
    for (int r = 0; r < a.num_resources(); ++r) {
      EXPECT_EQ(a.vertex_weight(v, r), b.vertex_weight(v, r));
    }
    const auto na = a.nets_of(v);
    const auto nb = b.nets_of(v);
    EXPECT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()));
  }
}

TEST(IoBinary, RoundTrip) {
  const BinaryInstance inst = sample_instance();
  const std::string path = temp_path("roundtrip");
  write_fpbin_file(path, inst.graph, &inst.fixed, inst.num_parts);

  const BinaryInstance got = read_fpbin_file(path);
  got.graph.validate();
  expect_graphs_equal(inst.graph, got.graph);
  EXPECT_EQ(got.num_parts, 4);
  EXPECT_EQ(got.fixed.fixed_part(2), 1);
  EXPECT_EQ(got.fixed.allowed_mask(1), 0b0101u);
  EXPECT_FALSE(got.fixed.is_restricted(0));
  std::remove(path.c_str());
}

TEST(IoBinary, MappedMatchesOwning) {
  const BinaryInstance inst = sample_instance();
  const std::string path = temp_path("mapped");
  write_fpbin_file(path, inst.graph, &inst.fixed, inst.num_parts);

  const BinaryInstance owning = read_fpbin_file(path);
  MappedHypergraph mapped(path);
  ASSERT_EQ(mapped.num_vertices(), owning.graph.num_vertices());
  ASSERT_EQ(mapped.num_nets(), owning.graph.num_nets());
  ASSERT_EQ(mapped.num_pins(), owning.graph.num_pins());
  EXPECT_EQ(mapped.num_pads(), owning.graph.num_pads());
  EXPECT_EQ(mapped.num_parts(), owning.num_parts);
  EXPECT_TRUE(mapped.has_fixed());
  for (NetId e = 0; e < mapped.num_nets(); ++e) {
    const auto pm = mapped.pins(e);
    const auto po = owning.graph.pins(e);
    ASSERT_TRUE(std::equal(pm.begin(), pm.end(), po.begin(), po.end()));
    EXPECT_EQ(mapped.net_weight(e), owning.graph.net_weight(e));
  }
  for (VertexId v = 0; v < mapped.num_vertices(); ++v) {
    EXPECT_EQ(mapped.degree(v), owning.graph.degree(v));
    EXPECT_EQ(mapped.vertex_weight(v, 1), owning.graph.vertex_weight(v, 1));
    EXPECT_EQ(mapped.is_pad(v), owning.graph.is_pad(v));
  }
  const FixedAssignment fixed = mapped.fixed_assignment();
  EXPECT_EQ(fixed.allowed_mask(1), owning.fixed.allowed_mask(1));
  EXPECT_EQ(fixed.fixed_part(2), owning.fixed.fixed_part(2));

  // to_hypergraph is the memcpy fast path; it must survive validate()
  // and match the owning reader exactly.
  const Hypergraph copied = mapped.to_hypergraph();
  copied.validate();
  expect_graphs_equal(owning.graph, copied);
  std::remove(path.c_str());
}

/// The acceptance differential: partitioning the mmap-served graph and
/// the owning graph of an ibm01-profile circuit from the same seed must
/// produce bit-identical assignments.
TEST(IoBinary, MappedVsOwningPartitionIdentical) {
  gen::GeneratedCircuit circuit =
      gen::generate_circuit(gen::ibm_like_spec(1, util::Scale::kSmoke));
  const std::string path = temp_path("ibm01");
  write_fpbin_file(path, circuit.graph);

  const BinaryInstance owning = read_fpbin_file(path);
  MappedHypergraph mapped(path);
  const Hypergraph mapped_graph = mapped.to_hypergraph();

  const auto partition = [](const Hypergraph& g) {
    const FixedAssignment free(g.num_vertices(), 2);
    const auto balance = part::BalanceConstraint::relative(g, 2, 10.0);
    const ml::MultilevelPartitioner partitioner(g, free, balance);
    util::Rng rng(42);
    return partitioner.best_of(2, rng, ml::MultilevelConfig{});
  };
  const auto a = partition(owning.graph);
  const auto b = partition(mapped_graph);
  EXPECT_EQ(a.cut, b.cut);
  EXPECT_EQ(a.assignment, b.assignment);
  std::remove(path.c_str());
}

TEST(IoBinary, CorruptionTaxonomy) {
  const BinaryInstance inst = sample_instance();
  const std::string path = temp_path("corrupt");
  write_fpbin_file(path, inst.graph, &inst.fixed, inst.num_parts);
  const std::string good = read_file(path);
  ASSERT_TRUE(is_fpbin(good));

  const auto expect_rejected = [&](std::string bytes, const std::string& why) {
    EXPECT_THROW(read_fpbin_bytes(bytes, "test"), util::InputError) << why;
    write_file(path, bytes);
    EXPECT_THROW(read_fpbin_file(path), util::InputError) << why << " (file)";
    EXPECT_THROW(MappedHypergraph m(path), util::InputError)
        << why << " (mmap)";
  };

  // Truncations at every interesting boundary.
  expect_rejected(good.substr(0, 4), "shorter than the magic");
  expect_rejected(good.substr(0, kFpbinHeaderBytes - 1), "partial header");
  expect_rejected(good.substr(0, kFpbinHeaderBytes), "header only");
  expect_rejected(good.substr(0, good.size() - 1), "one byte short");
  expect_rejected(good.substr(0, good.size() / 2), "half the payload");

  // Wrong magic / text masquerading as binary.
  expect_rejected("FPB 1.0\nresources 1\n", "bookshelf text");
  {
    std::string bad = good;
    bad[5] = 'X';  // the non-ASCII tripwire byte
    expect_rejected(bad, "clobbered magic");
  }
  // Unsupported version.
  {
    std::string bad = good;
    bad[kFpbinMagicBytes] = 99;
    expect_rejected(bad, "future version");
  }
  // Checksum mismatch: flip one payload bit (net_weights section — it
  // cannot trip a structural check first).
  {
    std::string bad = good;
    bad[bad.size() - 1] = static_cast<char>(bad[bad.size() - 1] ^ 0x40);
    expect_rejected(bad, "payload bit flip");
  }
  // Trailing garbage changes the byte count the header declares.
  expect_rejected(good + std::string(8, '\0'), "trailing garbage");

  // The pristine bytes still parse after all that.
  write_file(path, good);
  EXPECT_NO_THROW(read_fpbin_file(path));
  std::remove(path.c_str());
}

TEST(IoBinary, IsFpbinSniffing) {
  EXPECT_FALSE(is_fpbin(""));
  EXPECT_FALSE(is_fpbin("FPB 1.0\n"));    // bookshelf text
  EXPECT_FALSE(is_fpbin("FPBIN"));        // shorter than the magic
  EXPECT_FALSE(is_fpbin("3 2 11\n1 2\n"));  // hmetis text
}

TEST(IoBinary, StreamingGeneratorDeterministic) {
  gen::StreamSpec spec = gen::stream_spec_for_cells(2000, /*seed=*/7);
  const std::string p1 = temp_path("gen1");
  const std::string p2 = temp_path("gen2");
  gen::stream_circuit_fpbin(spec, p1);
  gen::stream_circuit_fpbin(spec, p2);
  const std::string b1 = read_file(p1);
  EXPECT_FALSE(b1.empty());
  EXPECT_EQ(b1, read_file(p2)) << "two runs of the same spec must be "
                                  "byte-identical";
  const BinaryInstance inst = read_fpbin_file(p1);
  inst.graph.validate();
  EXPECT_EQ(inst.graph.num_vertices() - inst.graph.num_pads(), 2000);
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

/// The 32/64-bit offset decision and section alignment at the 2^31
/// boundary, without a 16 GiB fixture.
TEST(IoBinary, LayoutOffsetWidthBoundary) {
  const std::uint64_t below = (std::uint64_t{1} << 31) - 1;
  const std::uint64_t at = std::uint64_t{1} << 31;
  const FpbinLayout narrow = fpbin_layout(1000, 500, below, 1, 0);
  const FpbinLayout wide = fpbin_layout(1000, 500, at, 1, 0);
  EXPECT_FALSE(narrow.wide_offsets);
  EXPECT_TRUE(wide.wide_offsets);
  // Wide offsets double the offset-table footprint; every section stays
  // 8-aligned in both regimes.
  EXPECT_GT(wide.payload_bytes, narrow.payload_bytes);
  for (const FpbinLayout& l : {narrow, wide}) {
    EXPECT_EQ(l.total_weights % 8, 0u);
    EXPECT_EQ(l.net_offsets % 8, 0u);
    EXPECT_EQ(l.net_pins % 8, 0u);
    EXPECT_EQ(l.vtx_offsets % 8, 0u);
    EXPECT_EQ(l.vtx_nets % 8, 0u);
    EXPECT_EQ(l.net_weights % 8, 0u);
    EXPECT_EQ(l.vertex_weights % 8, 0u);
    EXPECT_EQ(l.pad_flags % 8, 0u);
    EXPECT_EQ(l.fixed % 8, 0u);
    EXPECT_EQ(l.payload_bytes % 8, 0u);
  }
}

/// net_size()/degree() stay exact past 2^31 — synthetic offset tables
/// via the trusting from_csr, no giant pin arrays needed.
TEST(IoBinary, Int64DegreesViaSyntheticOffsets) {
  const std::int64_t huge = std::int64_t{3} << 30;  // > INT32_MAX
  CsrArrays a;
  a.num_vertices = 1;
  a.num_nets = 1;
  a.net_offsets = {0, huge};
  a.vtx_offsets = {0, huge};
  a.net_weights = {1};
  a.vertex_weights = {1};
  a.pad_flags = {0};
  a.total_weights = {1};
  a.num_pads = 0;
  a.max_weighted_degree = huge;  // pre-supplied: skip the O(pins) scan
  const Hypergraph g = Hypergraph::from_csr(std::move(a));
  EXPECT_EQ(g.net_size(0), huge);
  EXPECT_EQ(g.degree(0), huge);
  EXPECT_GT(g.net_size(0), std::numeric_limits<std::int32_t>::max());
}

TEST(IoBinary, CanonicalTextMatchesHmetisForPlainInstance) {
  // k=2, no pads, no fixed, one resource: the canonical text must be
  // byte-for-byte the hmetis serialization, so a .fpbin upload and the
  // equivalent .hgr upload hash to the same partitiond job id.
  HypergraphBuilder b;
  b.add_vertex(3);
  b.add_vertex(1);
  b.add_vertex(2);
  b.add_net(std::vector<VertexId>{0, 1});
  b.add_net(std::vector<VertexId>{1, 2}, 5);
  BinaryInstance inst;
  inst.graph = b.build();
  inst.fixed = FixedAssignment(3, 2);

  std::ostringstream hmetis;
  write_hmetis(hmetis, inst.graph);
  EXPECT_EQ(fpbin_canonical_text(inst), hmetis.str());

  // Anything .hgr cannot express shows up as fpbin-* suffix lines.
  BinaryInstance constrained = sample_instance();
  const std::string text = fpbin_canonical_text(constrained);
  EXPECT_NE(text.find("fpbin-parts 4"), std::string::npos);
  EXPECT_NE(text.find("fpbin-fix"), std::string::npos);
  EXPECT_NE(text.find("fpbin-pads"), std::string::npos);
}

TEST(IoBinary, WriterRejectsMisuse) {
  const std::string path = temp_path("misuse");
  {
    FpbinWriter w(path, 1, 2);
    w.add_vertex(Weight{1});
    w.add_vertex(Weight{1});
    const VertexId pins[] = {0, 1};
    w.count_net(std::span<const VertexId>(pins, 2));
    // add_net before begin_nets is a phase error.
    EXPECT_THROW(w.add_net(std::span<const VertexId>(pins, 2)),
                 std::logic_error);
    w.begin_nets();
    // Phase-2 replay must match phase 1: wrong pin count is an error.
    EXPECT_THROW(w.add_net(std::span<const VertexId>(pins, 1)),
                 std::logic_error);
    w.add_net(std::span<const VertexId>(pins, 2));
    w.finish();
  }
  EXPECT_NO_THROW(read_fpbin_file(path));
  // Unsorted or duplicate pins are rejected up front (the format stores
  // sorted unique pins).
  {
    const std::string path2 = temp_path("misuse2");
    FpbinWriter w(path2, 1, 2);
    w.add_vertex(Weight{1});
    w.add_vertex(Weight{1});
    const VertexId unsorted[] = {1, 0};
    EXPECT_THROW(w.count_net(std::span<const VertexId>(unsorted, 2)),
                 std::invalid_argument);
    std::remove(path2.c_str());
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fixedpart::hg
