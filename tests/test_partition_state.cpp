#include "part/partition.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hg/builder.hpp"
#include "util/rng.hpp"

namespace fixedpart::part {
namespace {

hg::Hypergraph chain(int n) {
  // n vertices in a path of 2-pin nets.
  hg::HypergraphBuilder b;
  for (int i = 0; i < n; ++i) b.add_vertex(1);
  for (int i = 0; i + 1 < n; ++i) {
    b.add_net(std::vector<hg::VertexId>{i, i + 1});
  }
  return b.build();
}

TEST(PartitionState, AssignTracksWeightAndCut) {
  const hg::Hypergraph g = chain(4);
  PartitionState s(g, 2);
  s.assign(0, 0);
  s.assign(1, 0);
  s.assign(2, 1);
  s.assign(3, 1);
  EXPECT_EQ(s.cut(), 1);  // only net {1,2} is cut
  EXPECT_EQ(s.part_weight(0), 2);
  EXPECT_EQ(s.part_weight(1), 2);
  EXPECT_EQ(s.num_assigned(), 4);
  EXPECT_EQ(s.recompute_cut(), s.cut());
}

TEST(PartitionState, MoveUpdatesCutBothWays) {
  const hg::Hypergraph g = chain(3);
  PartitionState s(g, 2);
  s.assign(0, 0);
  s.assign(1, 0);
  s.assign(2, 0);
  EXPECT_EQ(s.cut(), 0);
  s.move(1, 1);
  EXPECT_EQ(s.cut(), 2);  // both incident nets cut
  s.move(1, 0);
  EXPECT_EQ(s.cut(), 0);
}

TEST(PartitionState, MoveToSamePartIsNoop) {
  const hg::Hypergraph g = chain(2);
  PartitionState s(g, 2);
  s.assign(0, 0);
  s.assign(1, 1);
  const Weight before = s.cut();
  s.move(0, 0);
  EXPECT_EQ(s.cut(), before);
  EXPECT_EQ(s.part_weight(0), 1);
}

TEST(PartitionState, PinCountsAndConnectivity) {
  hg::HypergraphBuilder b;
  for (int i = 0; i < 3; ++i) b.add_vertex(1);
  b.add_net(std::vector<hg::VertexId>{0, 1, 2});
  const hg::Hypergraph g = b.build();
  PartitionState s(g, 3);
  s.assign(0, 0);
  s.assign(1, 1);
  s.assign(2, 2);
  EXPECT_EQ(s.pin_count(0, 0), 1);
  EXPECT_EQ(s.pin_count(0, 1), 1);
  EXPECT_EQ(s.pin_count(0, 2), 1);
  EXPECT_EQ(s.connectivity(0), 3);
  EXPECT_TRUE(s.is_cut(0));
  s.move(2, 0);
  EXPECT_EQ(s.connectivity(0), 2);
  s.move(1, 0);
  EXPECT_EQ(s.connectivity(0), 1);
  EXPECT_FALSE(s.is_cut(0));
}

TEST(PartitionState, WeightedNetsWeightedCut) {
  hg::HypergraphBuilder b;
  b.add_vertex(1);
  b.add_vertex(1);
  b.add_net(std::vector<hg::VertexId>{0, 1}, 7);
  const hg::Hypergraph g = b.build();
  PartitionState s(g, 2);
  s.assign(0, 0);
  s.assign(1, 1);
  EXPECT_EQ(s.cut(), 7);
}

TEST(PartitionState, SinglePinNetNeverCut) {
  hg::HypergraphBuilder b;
  b.add_vertex(1);
  b.add_net(std::vector<hg::VertexId>{0});
  const hg::Hypergraph g = b.build();
  PartitionState s(g, 2);
  s.assign(0, 1);
  EXPECT_EQ(s.cut(), 0);
}

TEST(PartitionState, MultiResourceWeights) {
  hg::HypergraphBuilder b(2);
  const Weight w0[] = {3, 1};
  const Weight w1[] = {5, 9};
  b.add_vertex(std::span<const Weight>(w0, 2));
  b.add_vertex(std::span<const Weight>(w1, 2));
  const hg::Hypergraph g = b.build();
  PartitionState s(g, 2);
  s.assign(0, 0);
  s.assign(1, 0);
  EXPECT_EQ(s.part_weight(0, 0), 8);
  EXPECT_EQ(s.part_weight(0, 1), 10);
  s.move(1, 1);
  EXPECT_EQ(s.part_weight(0, 1), 1);
  EXPECT_EQ(s.part_weight(1, 1), 9);
}

TEST(PartitionState, ErrorsOnMisuse) {
  const hg::Hypergraph g = chain(2);
  PartitionState s(g, 2);
  EXPECT_THROW(s.assign(9, 0), std::out_of_range);
  EXPECT_THROW(s.assign(0, 5), std::out_of_range);
  EXPECT_THROW(s.move(0, 1), std::logic_error);  // unassigned
  s.assign(0, 0);
  EXPECT_THROW(s.assign(0, 1), std::logic_error);  // double assign
  EXPECT_THROW(s.move(0, 9), std::out_of_range);
}

TEST(PartitionState, UnassignRestoresState) {
  const hg::Hypergraph g = chain(3);
  PartitionState s(g, 2);
  s.assign(0, 0);
  const Weight cut_before = s.cut();
  const Weight weight_before = s.part_weight(0);
  s.assign(1, 1);
  s.unassign(1);
  EXPECT_EQ(s.cut(), cut_before);
  EXPECT_EQ(s.part_weight(0), weight_before);
  EXPECT_EQ(s.part_weight(1), 0);
  EXPECT_FALSE(s.is_assigned(1));
  EXPECT_EQ(s.num_assigned(), 1);
  s.assign(1, 0);  // reusable after unassign
  EXPECT_EQ(s.num_assigned(), 2);
}

TEST(PartitionState, UnassignErrors) {
  const hg::Hypergraph g = chain(2);
  PartitionState s(g, 2);
  EXPECT_THROW(s.unassign(0), std::logic_error);   // not assigned
  EXPECT_THROW(s.unassign(9), std::out_of_range);  // bad vertex
}

TEST(PartitionState, ClearResets) {
  const hg::Hypergraph g = chain(3);
  PartitionState s(g, 2);
  s.assign(0, 0);
  s.assign(1, 1);
  s.assign(2, 0);
  s.clear();
  EXPECT_EQ(s.num_assigned(), 0);
  EXPECT_EQ(s.cut(), 0);
  EXPECT_EQ(s.part_weight(0), 0);
  EXPECT_FALSE(s.is_assigned(1));
  s.assign(1, 1);  // usable again
  EXPECT_EQ(s.num_assigned(), 1);
}

// Property test: incremental cut bookkeeping matches recomputation under
// long random move sequences, across several random hypergraphs and
// partition counts.
struct RandomMoveParam {
  std::uint64_t seed;
  int vertices;
  int nets;
  int parts;
};

class PartitionStateProperty : public ::testing::TestWithParam<RandomMoveParam> {};

TEST(PartitionState, BoundaryTracksCutNets) {
  const hg::Hypergraph g = chain(4);
  PartitionState s(g, 2);
  s.assign(0, 0);
  s.assign(1, 0);
  s.assign(2, 1);
  s.assign(3, 1);
  // Only net {1,2} is cut: its pins are boundary, the ends are not.
  EXPECT_FALSE(s.is_boundary(0));
  EXPECT_TRUE(s.is_boundary(1));
  EXPECT_TRUE(s.is_boundary(2));
  EXPECT_FALSE(s.is_boundary(3));
  EXPECT_EQ(s.boundary_degree(1), 1);
  s.move(2, 0);  // cut moves to net {2,3}
  EXPECT_FALSE(s.is_boundary(1));
  EXPECT_TRUE(s.is_boundary(2));
  EXPECT_TRUE(s.is_boundary(3));
  s.move(2, 1);  // and back
  EXPECT_TRUE(s.is_boundary(1));
  EXPECT_FALSE(s.is_boundary(3));
  s.unassign(2);  // net {1,2} loses its only side-1 pin: uncut again
  EXPECT_FALSE(s.is_boundary(1));
  s.clear();
  for (hg::VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_FALSE(s.is_boundary(v));
    EXPECT_EQ(s.boundary_degree(v), 0);
  }
}

TEST_P(PartitionStateProperty, IncrementalCutMatchesRecompute) {
  const auto param = GetParam();
  util::Rng rng(param.seed);
  hg::HypergraphBuilder b;
  for (int i = 0; i < param.vertices; ++i) {
    b.add_vertex(1 + static_cast<Weight>(rng.next_below(5)));
  }
  for (int e = 0; e < param.nets; ++e) {
    std::vector<hg::VertexId> pins;
    const int degree = 2 + static_cast<int>(rng.next_below(5));
    for (int d = 0; d < degree; ++d) {
      pins.push_back(static_cast<hg::VertexId>(
          rng.next_below(static_cast<std::uint64_t>(param.vertices))));
    }
    b.add_net(pins, 1 + static_cast<Weight>(rng.next_below(3)));
  }
  const hg::Hypergraph g = b.build();
  g.validate();

  PartitionState s(g, param.parts);
  for (hg::VertexId v = 0; v < g.num_vertices(); ++v) {
    s.assign(v, static_cast<hg::PartitionId>(
                    rng.next_below(static_cast<std::uint64_t>(param.parts))));
  }
  EXPECT_EQ(s.cut(), s.recompute_cut());

  std::vector<Weight> expected_weight(static_cast<std::size_t>(param.parts), 0);
  for (hg::VertexId v = 0; v < g.num_vertices(); ++v) {
    expected_weight[s.part_of(v)] += g.vertex_weight(v);
  }
  for (int step = 0; step < 300; ++step) {
    const auto v = static_cast<hg::VertexId>(
        rng.next_below(static_cast<std::uint64_t>(param.vertices)));
    const auto to = static_cast<hg::PartitionId>(
        rng.next_below(static_cast<std::uint64_t>(param.parts)));
    expected_weight[s.part_of(v)] -= g.vertex_weight(v);
    expected_weight[to] += g.vertex_weight(v);
    s.move(v, to);
    ASSERT_EQ(s.cut(), s.recompute_cut()) << "step " << step;
    if (step % 50 == 0) {
      // Boundary bookkeeping matches brute force: v is boundary iff some
      // incident net is cut, and boundary_degree counts those nets.
      for (hg::VertexId u = 0; u < g.num_vertices(); ++u) {
        std::int32_t cut_nets = 0;
        for (hg::NetId e : g.nets_of(u)) cut_nets += s.is_cut(e) ? 1 : 0;
        ASSERT_EQ(s.boundary_degree(u), cut_nets) << "step " << step;
        ASSERT_EQ(s.is_boundary(u), cut_nets > 0) << "step " << step;
      }
    }
  }
  for (int p = 0; p < param.parts; ++p) {
    EXPECT_EQ(s.part_weight(p), expected_weight[p]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomMoves, PartitionStateProperty,
    ::testing::Values(RandomMoveParam{1, 10, 20, 2},
                      RandomMoveParam{2, 30, 60, 2},
                      RandomMoveParam{3, 25, 50, 3},
                      RandomMoveParam{4, 40, 100, 4},
                      RandomMoveParam{5, 8, 40, 5},
                      RandomMoveParam{6, 60, 30, 2},
                      RandomMoveParam{7, 15, 80, 8}));

}  // namespace
}  // namespace fixedpart::part
