#include "gen/regimes.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "gen/netlist_gen.hpp"
#include "util/rng.hpp"

namespace fixedpart::gen {
namespace {

GeneratedCircuit circuit() {
  CircuitSpec spec;
  spec.num_cells = 400;
  spec.num_nets = 450;
  spec.num_pads = 16;
  spec.seed = 3;
  return generate_circuit(spec);
}

TEST(FixedVertexSeries, CountMatchesPercentage) {
  const auto c = circuit();
  util::Rng rng(1);
  const FixedVertexSeries series(c.graph, 2, rng);
  EXPECT_EQ(series.count_at(0.0), 0);
  EXPECT_EQ(series.count_at(100.0), c.graph.num_vertices());
  EXPECT_EQ(series.count_at(50.0), c.graph.num_vertices() / 2);
  EXPECT_THROW(series.count_at(-1.0), std::invalid_argument);
  EXPECT_THROW(series.count_at(101.0), std::invalid_argument);
}

TEST(FixedVertexSeries, RandRegimeFixesExactlyThatMany) {
  const auto c = circuit();
  util::Rng rng(2);
  const FixedVertexSeries series(c.graph, 2, rng);
  for (const double pct : {0.0, 1.0, 10.0, 50.0}) {
    const auto fixed = series.rand_regime(pct);
    EXPECT_EQ(fixed.count_fixed(), series.count_at(pct)) << pct;
  }
}

TEST(FixedVertexSeries, SeriesIsNested) {
  // "All vertices fixed at 1.0% are also fixed at 2.0%" — and to the same
  // side.
  const auto c = circuit();
  util::Rng rng(3);
  const FixedVertexSeries series(c.graph, 2, rng);
  const auto small = series.rand_regime(5.0);
  const auto large = series.rand_regime(20.0);
  for (hg::VertexId v = 0; v < c.graph.num_vertices(); ++v) {
    if (small.is_fixed(v)) {
      ASSERT_TRUE(large.is_fixed(v));
      EXPECT_EQ(small.fixed_part(v), large.fixed_part(v));
    }
  }
}

TEST(FixedVertexSeries, GoodRegimeFollowsReference) {
  const auto c = circuit();
  util::Rng rng(4);
  const FixedVertexSeries series(c.graph, 2, rng);
  std::vector<hg::PartitionId> reference(
      static_cast<std::size_t>(c.graph.num_vertices()));
  for (std::size_t i = 0; i < reference.size(); ++i) {
    reference[i] = static_cast<hg::PartitionId>(i % 2);
  }
  const auto fixed = series.good_regime(30.0, reference);
  for (hg::VertexId v = 0; v < c.graph.num_vertices(); ++v) {
    if (fixed.is_fixed(v)) {
      EXPECT_EQ(fixed.fixed_part(v), reference[v]);
    }
  }
}

TEST(FixedVertexSeries, GoodRegimeValidatesReference) {
  const auto c = circuit();
  util::Rng rng(5);
  const FixedVertexSeries series(c.graph, 2, rng);
  const std::vector<hg::PartitionId> too_short(10, 0);
  EXPECT_THROW(series.good_regime(10.0, too_short), std::invalid_argument);
  std::vector<hg::PartitionId> bad_side(
      static_cast<std::size_t>(c.graph.num_vertices()), 0);
  bad_side[0] = 7;
  // Only throws if vertex 0 lands in the fixed prefix; use 100%.
  EXPECT_THROW(series.good_regime(100.0, bad_side), std::invalid_argument);
}

TEST(FixedVertexSeries, RandSidesRoughlyBalanced) {
  const auto c = circuit();
  util::Rng rng(6);
  const FixedVertexSeries series(c.graph, 2, rng);
  const auto fixed = series.rand_regime(100.0);
  int side0 = 0;
  for (hg::VertexId v = 0; v < c.graph.num_vertices(); ++v) {
    side0 += (fixed.fixed_part(v) == 0);
  }
  const double frac =
      static_cast<double>(side0) / static_cast<double>(c.graph.num_vertices());
  EXPECT_GT(frac, 0.4);
  EXPECT_LT(frac, 0.6);
}

TEST(FixedVertexSeries, HighDegreeFirstOrdering) {
  const auto c = circuit();
  util::Rng rng(8);
  const FixedVertexSeries series(c.graph, 2, rng,
                                 SelectionOrder::kHighDegreeFirst);
  const auto perm = series.permutation();
  for (std::size_t i = 1; i < perm.size(); ++i) {
    EXPECT_GE(c.graph.degree(perm[i - 1]), c.graph.degree(perm[i]));
  }
  // At 5%, the fixed set is exactly the top-degree slice: every fixed
  // vertex has degree >= every free vertex.
  const auto fixed = series.rand_regime(5.0);
  std::int64_t min_fixed_degree = 1 << 30;
  std::int64_t max_free_degree = 0;
  for (hg::VertexId v = 0; v < c.graph.num_vertices(); ++v) {
    if (fixed.is_fixed(v)) {
      min_fixed_degree = std::min(min_fixed_degree, c.graph.degree(v));
    } else {
      max_free_degree = std::max(max_free_degree, c.graph.degree(v));
    }
  }
  EXPECT_GE(min_fixed_degree, max_free_degree);
}

TEST(FixedVertexSeries, PermutationIsCompleteAndUnique) {
  const auto c = circuit();
  util::Rng rng(7);
  const FixedVertexSeries series(c.graph, 2, rng);
  std::vector<bool> seen(static_cast<std::size_t>(c.graph.num_vertices()),
                         false);
  for (hg::VertexId v : series.permutation()) {
    ASSERT_FALSE(seen[v]);
    seen[v] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

}  // namespace
}  // namespace fixedpart::gen
