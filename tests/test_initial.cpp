#include "part/initial.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hg/builder.hpp"
#include "util/rng.hpp"

namespace fixedpart::part {
namespace {

hg::Hypergraph unit_graph(int n) {
  hg::HypergraphBuilder b;
  for (int i = 0; i < n; ++i) b.add_vertex(1);
  return b.build();
}

TEST(Initial, AssignsEveryVertexFeasibly) {
  const hg::Hypergraph g = unit_graph(100);
  const hg::FixedAssignment fixed(100, 2);
  const auto balance = BalanceConstraint::relative(g, 2, 2.0);
  PartitionState state(g, 2);
  util::Rng rng(1);
  random_feasible_assignment(state, fixed, balance, rng);
  EXPECT_EQ(state.num_assigned(), 100);
  EXPECT_TRUE(balance.satisfied(state.part_weights()));
  check_respects_fixed(state, fixed);
}

TEST(Initial, HonoursFixedVertices) {
  const hg::Hypergraph g = unit_graph(50);
  hg::FixedAssignment fixed(50, 2);
  for (hg::VertexId v = 0; v < 10; ++v) fixed.fix(v, 1);
  const auto balance = BalanceConstraint::relative(g, 2, 10.0);
  PartitionState state(g, 2);
  util::Rng rng(2);
  random_feasible_assignment(state, fixed, balance, rng);
  for (hg::VertexId v = 0; v < 10; ++v) EXPECT_EQ(state.part_of(v), 1);
}

TEST(Initial, HonoursOrSets) {
  const hg::Hypergraph g = unit_graph(40);
  hg::FixedAssignment fixed(40, 4);
  fixed.restrict_to(0, 0b1010);  // parts 1 or 3 only
  const auto balance = BalanceConstraint::relative(g, 4, 20.0);
  util::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    PartitionState state(g, 4);
    random_feasible_assignment(state, fixed, balance, rng);
    EXPECT_TRUE(state.part_of(0) == 1 || state.part_of(0) == 3);
  }
}

TEST(Initial, PlacesMacrosFirstFit) {
  // One 40% macro + unit cells at a 2% tolerance: feasible only if the
  // macro goes first and the filler is spread around it.
  hg::HypergraphBuilder b;
  b.add_vertex(40);
  for (int i = 0; i < 60; ++i) b.add_vertex(1);
  const hg::Hypergraph g = b.build();
  const hg::FixedAssignment fixed(g.num_vertices(), 2);
  const auto balance = BalanceConstraint::relative(g, 2, 2.0);
  util::Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    PartitionState state(g, 2);
    random_feasible_assignment(state, fixed, balance, rng);
    EXPECT_TRUE(balance.satisfied(state.part_weights()));
  }
}

TEST(Initial, InfeasibleMacroThrows) {
  hg::HypergraphBuilder b;
  b.add_vertex(100);  // exceeds any 2% bisection capacity alone
  b.add_vertex(100);
  b.add_vertex(100);
  const hg::Hypergraph g = b.build();
  const hg::FixedAssignment fixed(3, 2);
  const auto balance = BalanceConstraint::relative(g, 2, 2.0);
  PartitionState state(g, 2);
  util::Rng rng(5);
  EXPECT_THROW(random_feasible_assignment(state, fixed, balance, rng),
               std::runtime_error);
}

TEST(Initial, RandomAcrossSeeds) {
  const hg::Hypergraph g = unit_graph(30);
  const hg::FixedAssignment fixed(30, 2);
  const auto balance = BalanceConstraint::relative(g, 2, 10.0);
  PartitionState a(g, 2);
  PartitionState b2(g, 2);
  util::Rng rng_a(6);
  util::Rng rng_b(7);
  random_feasible_assignment(a, fixed, balance, rng_a);
  random_feasible_assignment(b2, fixed, balance, rng_b);
  int diff = 0;
  for (hg::VertexId v = 0; v < 30; ++v) {
    diff += (a.part_of(v) != b2.part_of(v));
  }
  EXPECT_GT(diff, 0);
}

TEST(CheckRespectsFixed, DetectsViolations) {
  const hg::Hypergraph g = unit_graph(4);
  hg::FixedAssignment fixed(4, 2);
  fixed.fix(0, 1);
  PartitionState state(g, 2);
  state.assign(0, 0);  // violates the fix
  state.assign(1, 0);
  state.assign(2, 1);
  state.assign(3, 1);
  EXPECT_THROW(check_respects_fixed(state, fixed), std::logic_error);
}

TEST(CheckRespectsFixed, DetectsUnassigned) {
  const hg::Hypergraph g = unit_graph(2);
  const hg::FixedAssignment fixed(2, 2);
  PartitionState state(g, 2);
  state.assign(0, 0);
  EXPECT_THROW(check_respects_fixed(state, fixed), std::logic_error);
}

}  // namespace
}  // namespace fixedpart::part
