#include "ml/coarsen.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hg/builder.hpp"
#include "ml/matching.hpp"
#include "part/partition.hpp"
#include "util/rng.hpp"

namespace fixedpart::ml {
namespace {

hg::Hypergraph random_graph(util::Rng& rng, int n, int nets) {
  hg::HypergraphBuilder b;
  for (int i = 0; i < n; ++i) {
    b.add_vertex(1 + static_cast<Weight>(rng.next_below(3)));
  }
  for (int e = 0; e < nets; ++e) {
    std::vector<hg::VertexId> pins;
    const int degree = 2 + static_cast<int>(rng.next_below(4));
    for (int d = 0; d < degree; ++d) {
      pins.push_back(static_cast<hg::VertexId>(
          rng.next_below(static_cast<std::uint64_t>(n))));
    }
    b.add_net(pins);
  }
  return b.build();
}

TEST(Matching, SymmetricAndCompatible) {
  util::Rng rng(1);
  const hg::Hypergraph g = random_graph(rng, 50, 100);
  hg::FixedAssignment fixed(50, 2);
  for (hg::VertexId v = 0; v < 10; ++v) fixed.fix(v, v % 2);
  const auto match = heavy_edge_matching(g, fixed, MatchingConfig{}, rng);
  ASSERT_EQ(match.size(), 50u);
  for (hg::VertexId v = 0; v < 50; ++v) {
    EXPECT_EQ(match[match[v]], v);
    if (match[v] != v) {
      EXPECT_NE(fixed.allowed_mask(v) & fixed.allowed_mask(match[v]), 0u);
    }
  }
}

TEST(Matching, NeverMergesOppositeFixed) {
  // Two vertices fixed to opposite sides, heavily connected: must not match.
  hg::HypergraphBuilder b;
  b.add_vertex(1);
  b.add_vertex(1);
  for (int i = 0; i < 5; ++i) b.add_net(std::vector<hg::VertexId>{0, 1});
  const hg::Hypergraph g = b.build();
  hg::FixedAssignment fixed(2, 2);
  fixed.fix(0, 0);
  fixed.fix(1, 1);
  util::Rng rng(2);
  const auto match = heavy_edge_matching(g, fixed, MatchingConfig{}, rng);
  EXPECT_EQ(match[0], 0);
  EXPECT_EQ(match[1], 1);
}

TEST(Matching, RespectsWeightCap) {
  // Two heavy, strongly-connected vertices among unit filler: with a 40%
  // cluster cap the heavy pair (120 of a 178 total) must never merge.
  hg::HypergraphBuilder b;
  b.add_vertex(60);
  b.add_vertex(60);
  for (int i = 0; i < 58; ++i) b.add_vertex(1);
  for (int k = 0; k < 4; ++k) b.add_net(std::vector<hg::VertexId>{0, 1});
  const hg::Hypergraph g = b.build();
  const hg::FixedAssignment fixed(g.num_vertices(), 2);
  MatchingConfig config;
  config.max_cluster_fraction = 0.4;  // cap 71 < 120
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    util::Rng rng(seed);
    const auto match = heavy_edge_matching(g, fixed, config, rng);
    EXPECT_NE(match[0], 1);
    EXPECT_NE(match[1], 0);
  }
}

TEST(Matching, PrefersHeavierConnection) {
  // Every vertex's heaviest neighbour is its designated partner, so the
  // greedy matching must pair {0,1} and {2,3} regardless of visit order.
  hg::HypergraphBuilder b;
  for (int i = 0; i < 4; ++i) b.add_vertex(1);
  b.add_net(std::vector<hg::VertexId>{0, 1});
  b.add_net(std::vector<hg::VertexId>{0, 1});
  b.add_net(std::vector<hg::VertexId>{2, 3});
  b.add_net(std::vector<hg::VertexId>{2, 3});
  b.add_net(std::vector<hg::VertexId>{0, 2});
  b.add_net(std::vector<hg::VertexId>{1, 3});
  const hg::Hypergraph g = b.build();
  const hg::FixedAssignment fixed(4, 2);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    util::Rng rng(seed);
    const auto match = heavy_edge_matching(g, fixed, MatchingConfig{}, rng);
    EXPECT_EQ(match[0], 1);
    EXPECT_EQ(match[2], 3);
  }
}

TEST(Contract, WeightAndMaskAggregation) {
  hg::HypergraphBuilder b;
  for (int i = 0; i < 4; ++i) b.add_vertex(i + 1);
  b.add_net(std::vector<hg::VertexId>{0, 1});
  b.add_net(std::vector<hg::VertexId>{2, 3});
  b.add_net(std::vector<hg::VertexId>{1, 2});
  const hg::Hypergraph g = b.build();
  hg::FixedAssignment fixed(4, 2);
  fixed.fix(0, 0);  // cluster {0,1} becomes fixed to 0
  const std::vector<hg::VertexId> match = {1, 0, 3, 2};
  const CoarseLevel level = contract(g, fixed, match);
  EXPECT_EQ(level.graph.num_vertices(), 2);
  EXPECT_EQ(level.graph.vertex_weight(level.map[0]), 3);   // 1+2
  EXPECT_EQ(level.graph.vertex_weight(level.map[2]), 7);   // 3+4
  EXPECT_EQ(level.fixed.fixed_part(level.map[0]), 0);
  EXPECT_EQ(level.fixed.fixed_part(level.map[2]), hg::kNoPartition);
  // Nets {0,1} and {2,3} collapse to single-pin and are dropped; {1,2}
  // becomes the only coarse net.
  EXPECT_EQ(level.graph.num_nets(), 1);
  level.graph.validate();
}

TEST(Contract, MergesIdenticalNetsWithSummedWeight) {
  hg::HypergraphBuilder b;
  for (int i = 0; i < 4; ++i) b.add_vertex(1);
  b.add_net(std::vector<hg::VertexId>{0, 2}, 2);
  b.add_net(std::vector<hg::VertexId>{1, 3}, 5);  // same coarse net
  const hg::Hypergraph g = b.build();
  const hg::FixedAssignment fixed(4, 2);
  const std::vector<hg::VertexId> match = {1, 0, 3, 2};
  const CoarseLevel level = contract(g, fixed, match);
  ASSERT_EQ(level.graph.num_nets(), 1);
  EXPECT_EQ(level.graph.net_weight(0), 7);
}

TEST(Contract, RejectsAsymmetricMatch) {
  hg::HypergraphBuilder b;
  for (int i = 0; i < 3; ++i) b.add_vertex(1);
  const hg::Hypergraph g = b.build();
  const hg::FixedAssignment fixed(3, 2);
  const std::vector<hg::VertexId> match = {1, 2, 0};  // a 3-cycle, not pairs
  EXPECT_THROW(contract(g, fixed, match), std::invalid_argument);
}

TEST(Contract, RejectsWrongSize) {
  hg::HypergraphBuilder b;
  b.add_vertex(1);
  const hg::Hypergraph g = b.build();
  const hg::FixedAssignment fixed(1, 2);
  EXPECT_THROW(contract(g, fixed, {0, 1}), std::invalid_argument);
}

/// Property: for any coarse assignment, the projected fine assignment has
/// exactly the same cut (contraction preserves the cut function).
class ContractProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ContractProperty, ProjectionPreservesCut) {
  util::Rng rng(GetParam());
  const hg::Hypergraph g = random_graph(rng, 40, 80);
  hg::FixedAssignment fixed(40, 2);
  for (hg::VertexId v = 0; v < 8; ++v) {
    fixed.fix(v, static_cast<hg::PartitionId>(rng.next_below(2)));
  }
  const auto match = heavy_edge_matching(g, fixed, MatchingConfig{}, rng);
  const CoarseLevel level = contract(g, fixed, match);
  EXPECT_LE(level.graph.num_vertices(), g.num_vertices());
  // Total weight conserved.
  EXPECT_EQ(level.graph.total_weight(), g.total_weight());
  level.graph.validate();

  for (int trial = 0; trial < 8; ++trial) {
    part::PartitionState coarse(level.graph, 2);
    for (hg::VertexId c = 0; c < level.graph.num_vertices(); ++c) {
      hg::PartitionId p = level.fixed.fixed_part(c);
      if (p == hg::kNoPartition) {
        p = static_cast<hg::PartitionId>(rng.next_below(2));
      }
      coarse.assign(c, p);
    }
    part::PartitionState fine(g, 2);
    for (hg::VertexId v = 0; v < g.num_vertices(); ++v) {
      fine.assign(v, coarse.part_of(level.map[v]));
    }
    EXPECT_EQ(fine.cut(), coarse.cut());
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, ContractProperty,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

}  // namespace
}  // namespace fixedpart::ml
