#!/usr/bin/env bash
# Regression check: the "metrics" section embedded in a BENCH json must
# cover exactly the timed measurements — the extra untimed multistart run
# that --trace-out performs must not pollute it. Runs the smoke benchmark
# twice (with and without --trace-out) and requires the embedded ml.runs
# counter to be identical. Skips (passes) under FIXEDPART_OBS=OFF, where
# the metrics section is empty either way.
#
# Usage: bench_metrics_scrape.sh /path/to/bench_to_json
set -euo pipefail

bench=${1:?usage: bench_metrics_scrape.sh /path/to/bench_to_json}
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
cd "$workdir"

"$bench" --smoke --out=plain.json > /dev/null 2>&1
"$bench" --smoke --out=traced.json --trace-out=trace.json > /dev/null 2>&1

# The counter the traced extra run would inflate first.
runs_of() { sed -n 's/.*"ml\.runs": \([0-9]*\).*/\1/p' "$1" | head -n1; }

plain_runs=$(runs_of plain.json)
traced_runs=$(runs_of traced.json)

if [ -z "$plain_runs" ] || [ -z "$traced_runs" ]; then
  if grep -q '"counters": *{ *}' plain.json || grep -q '"counters": {}' plain.json; then
    echo "PASS: bench metrics scrape (no counters, OBS=OFF)"
    exit 0
  fi
  echo "FAIL: ml.runs not found in bench output"; exit 1
fi

[ "$plain_runs" = "$traced_runs" ] || {
  echo "FAIL: --trace-out polluted embedded metrics: ml.runs $plain_runs -> $traced_runs"
  exit 1
}
[ -s trace.json ] || { echo "FAIL: trace.json missing"; exit 1; }

echo "PASS: bench metrics scrape unpolluted by --trace-out (ml.runs=$plain_runs)"
