#!/usr/bin/env bash
# Scale smoke for the .fpbin / streaming-generation / memory-diet path
# (ctest label `scale`; docs/PERF.md "BENCH_LARGE").
#
# Default (CI / plain ctest): a small streamed instance runs the whole
# generate -> mmap scan -> owning load -> text parse -> partition ladder
# with a memory budget and a parse-throughput floor. Sanitizer builds set
# FIXEDPART_LARGE_SKIP=1 (scripts/check.sh does) because shadow memory
# makes any RSS budget meaningless and throughput floors flaky.
#
# FIXEDPART_LARGE_CELLS overrides the instance size (e.g. 1000000 for the
# committed BENCH_LARGE configuration); budgets scale linearly with it.
#
# Usage: large_scale.sh /path/to/bench_large
set -euo pipefail

bench=${1:?usage: large_scale.sh /path/to/bench_large}

if [ "${FIXEDPART_LARGE_SKIP:-0}" = "1" ]; then
  echo "large_scale: skipped (FIXEDPART_LARGE_SKIP=1)"
  exit 0
fi

cells=${FIXEDPART_LARGE_CELLS:-200000}
# Empirical envelope with ~4x headroom: the 200k-cell ladder peaks well
# under 512 MB, and the footprint is dominated by O(pins) arrays, so the
# budget scales linearly in the cell count.
rss_mb=$(( 512 * ( (cells + 199999) / 200000 ) ))
out=$(mktemp /tmp/bench_large_smoke.XXXXXX.json)
trap 'rm -f "$out"' EXIT

"$bench" --out="$out" --cells="$cells" --budget=120 \
  --max-rss-mb="$rss_mb" --min-parse-mbps=20

grep -q '"generated_by": "bench_large"' "$out"
grep -q '"partition"' "$out"
echo "large_scale: PASS (cells=$cells, rss budget ${rss_mb} MB)"
