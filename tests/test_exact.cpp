#include "part/exact.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "hg/builder.hpp"
#include "part/fm.hpp"
#include "part/initial.hpp"
#include "part/partition.hpp"
#include "util/rng.hpp"

namespace fixedpart::part {
namespace {

hg::Hypergraph random_graph(util::Rng& rng, int n, int nets) {
  hg::HypergraphBuilder b;
  for (int i = 0; i < n; ++i) {
    b.add_vertex(1 + static_cast<Weight>(rng.next_below(3)));
  }
  for (int e = 0; e < nets; ++e) {
    std::vector<hg::VertexId> pins;
    const int degree = 2 + static_cast<int>(rng.next_below(3));
    for (int d = 0; d < degree; ++d) {
      pins.push_back(static_cast<hg::VertexId>(
          rng.next_below(static_cast<std::uint64_t>(n))));
    }
    b.add_net(pins, 1 + static_cast<Weight>(rng.next_below(2)));
  }
  return b.build();
}

/// Exhaustive reference (2^movable).
Weight brute_force(const hg::Hypergraph& g, const hg::FixedAssignment& fixed,
                   const BalanceConstraint& balance) {
  std::vector<hg::VertexId> movable;
  for (hg::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (!fixed.is_fixed(v)) movable.push_back(v);
  }
  Weight best = std::numeric_limits<Weight>::max();
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << movable.size());
       ++mask) {
    PartitionState state(g, 2);
    for (hg::VertexId v = 0; v < g.num_vertices(); ++v) {
      if (fixed.is_fixed(v)) state.assign(v, fixed.fixed_part(v));
    }
    for (std::size_t i = 0; i < movable.size(); ++i) {
      state.assign(movable[i],
                   static_cast<hg::PartitionId>((mask >> i) & 1U));
    }
    if (!balance.satisfied(state.part_weights())) continue;
    best = std::min(best, state.cut());
  }
  return best;
}

TEST(Exact, TrivialInstances) {
  hg::HypergraphBuilder b;
  b.add_vertex(1);
  b.add_vertex(1);
  b.add_net(std::vector<hg::VertexId>{0, 1});
  const hg::Hypergraph g = b.build();
  const hg::FixedAssignment fixed(2, 2);
  {
    // Loose balance: both on one side, cut 0.
    const auto balance = BalanceConstraint::relative(g, 2, 100.0);
    const auto result = exact_bipartition(g, fixed, balance);
    EXPECT_TRUE(result.proven_optimal);
    EXPECT_EQ(result.cut, 0);
  }
  {
    // Exact bisection: forced split, cut 1.
    const auto balance = BalanceConstraint::relative(g, 2, 0.0);
    const auto result = exact_bipartition(g, fixed, balance);
    EXPECT_TRUE(result.proven_optimal);
    EXPECT_EQ(result.cut, 1);
  }
}

TEST(Exact, InfeasibleInstanceReported) {
  hg::HypergraphBuilder b;
  b.add_vertex(100);
  b.add_vertex(100);
  b.add_vertex(100);
  const hg::Hypergraph g = b.build();
  const hg::FixedAssignment fixed(3, 2);
  const auto balance = BalanceConstraint::relative(g, 2, 0.0);  // cap 150
  const auto result = exact_bipartition(g, fixed, balance);
  EXPECT_FALSE(result.feasible);
}

TEST(Exact, RespectsFixedVertices) {
  util::Rng rng(1);
  const hg::Hypergraph g = random_graph(rng, 14, 24);
  hg::FixedAssignment fixed(g.num_vertices(), 2);
  fixed.fix(0, 1);
  fixed.fix(3, 0);
  const auto balance = BalanceConstraint::relative(g, 2, 20.0);
  const auto result = exact_bipartition(g, fixed, balance);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.assignment[0], 1);
  EXPECT_EQ(result.assignment[3], 0);
}

TEST(Exact, NodeBudgetProducesIncumbent) {
  util::Rng rng(2);
  const hg::Hypergraph g = random_graph(rng, 24, 40);
  const hg::FixedAssignment fixed(g.num_vertices(), 2);
  const auto balance = BalanceConstraint::relative(g, 2, 20.0);
  ExactConfig config;
  config.max_nodes = 50;
  const auto result = exact_bipartition(g, fixed, balance, config);
  EXPECT_FALSE(result.proven_optimal);
  EXPECT_GT(result.nodes, 0);
}

TEST(Exact, RejectsBadArguments) {
  util::Rng rng(3);
  const hg::Hypergraph g = random_graph(rng, 6, 8);
  const hg::FixedAssignment fixed4(g.num_vertices(), 4);
  const auto balance4 = BalanceConstraint::relative(g, 4, 20.0);
  EXPECT_THROW(exact_bipartition(g, fixed4, balance4),
               std::invalid_argument);
}

struct ExactParam {
  std::uint64_t seed;
  int vertices;
  int nets;
  double tolerance;
  int fixed_count;
};

class ExactVsBruteForce : public ::testing::TestWithParam<ExactParam> {};

TEST_P(ExactVsBruteForce, MatchesExhaustiveOptimum) {
  const auto param = GetParam();
  util::Rng rng(param.seed);
  const hg::Hypergraph g = random_graph(rng, param.vertices, param.nets);
  hg::FixedAssignment fixed(g.num_vertices(), 2);
  for (int i = 0; i < param.fixed_count; ++i) {
    fixed.fix(static_cast<hg::VertexId>(i),
              static_cast<hg::PartitionId>(rng.next_below(2)));
  }
  const auto balance = BalanceConstraint::relative(g, 2, param.tolerance);
  const Weight reference = brute_force(g, fixed, balance);
  const auto result = exact_bipartition(g, fixed, balance);
  if (reference == std::numeric_limits<Weight>::max()) {
    EXPECT_FALSE(result.feasible);
    return;
  }
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_EQ(result.cut, reference);
  // The reported assignment realizes the reported cut and the balance.
  PartitionState state(g, 2);
  for (hg::VertexId v = 0; v < g.num_vertices(); ++v) {
    state.assign(v, result.assignment[v]);
  }
  EXPECT_EQ(state.cut(), result.cut);
  EXPECT_TRUE(balance.satisfied(state.part_weights()));
}

INSTANTIATE_TEST_SUITE_P(
    TinyInstances, ExactVsBruteForce,
    ::testing::Values(ExactParam{11, 10, 18, 20.0, 0},
                      ExactParam{12, 12, 20, 20.0, 2},
                      ExactParam{13, 12, 24, 5.0, 0},
                      ExactParam{14, 14, 20, 30.0, 4},
                      ExactParam{15, 14, 28, 10.0, 0},
                      ExactParam{16, 10, 30, 0.0, 0},
                      ExactParam{17, 16, 24, 15.0, 6},
                      ExactParam{18, 16, 30, 25.0, 0}));

// Cross-validation in the other direction: the heuristics measured
// against the proven optimum on instances beyond brute force but within
// branch-and-bound reach.
class HeuristicVsExact : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeuristicVsExact, MultistartFmIsNearOptimal) {
  util::Rng gen(GetParam());
  const hg::Hypergraph g = random_graph(gen, 26, 48);
  hg::FixedAssignment fixed(g.num_vertices(), 2);
  fixed.fix(0, 0);
  fixed.fix(1, 1);
  fixed.fix(2, static_cast<hg::PartitionId>(gen.next_below(2)));
  const auto balance = BalanceConstraint::relative(g, 2, 25.0);
  const auto exact = exact_bipartition(g, fixed, balance);
  ASSERT_TRUE(exact.proven_optimal);

  FmBipartitioner fm(g, fixed, balance);
  util::Rng rng(GetParam() ^ 0x1234);
  Weight best = std::numeric_limits<Weight>::max();
  PartitionState state(g, 2);
  for (int s = 0; s < 12; ++s) {
    random_feasible_assignment(state, fixed, balance, rng);
    fm.refine(state, rng, FmConfig{});
    best = std::min(best, state.cut());
  }
  // Never below the proven optimum, and close to it: on 26-vertex
  // instances 12 FM starts land within a small additive margin.
  EXPECT_GE(best, exact.cut);
  EXPECT_LE(static_cast<double>(best),
            1.25 * static_cast<double>(exact.cut) + 2.0);
}

INSTANTIATE_TEST_SUITE_P(MediumInstances, HeuristicVsExact,
                         ::testing::Values(71, 72, 73, 74, 75, 76));

TEST(Exact, ScalesBeyondBruteForce) {
  // 30 movable vertices: 2^30 brute force is out of reach, branch and
  // bound is not.
  util::Rng rng(4);
  const hg::Hypergraph g = random_graph(rng, 30, 55);
  const hg::FixedAssignment fixed(g.num_vertices(), 2);
  const auto balance = BalanceConstraint::relative(g, 2, 20.0);
  const auto result = exact_bipartition(g, fixed, balance);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_GT(result.cut, 0);
  EXPECT_LT(result.nodes, 4'000'000);
}

}  // namespace
}  // namespace fixedpart::part
