#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace fixedpart::util {
namespace {

TEST(RunningStat, EmptyThrowsOnMean) {
  RunningStat s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.mean(), std::logic_error);
  EXPECT_THROW(s.min(), std::logic_error);
  EXPECT_THROW(s.max(), std::logic_error);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 4.0);
}

TEST(RunningStat, KnownMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations is 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, StddevDefinedForFewerThanTwoSamples) {
  // Contract: variance/stddev are 0 (not NaN, no throw) for n < 2.
  RunningStat s;
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, StddevNeverNanOnNearConstantSamples) {
  // Values whose mean is inexact in binary: Welford's m2 accumulates
  // round-off and could dip below zero without the clamp.
  RunningStat s;
  for (int i = 0; i < 1000; ++i) s.add(0.1);
  EXPECT_GE(s.variance(), 0.0);
  EXPECT_FALSE(std::isnan(s.stddev()));
  EXPECT_NEAR(s.stddev(), 0.0, 1e-12);
}

TEST(RunningStat, NegativeValues) {
  RunningStat s;
  s.add(-5.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
}

TEST(Percentile, MedianOfOdd) {
  const std::vector<double> v = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.0);
}

TEST(Percentile, Extremes) {
  const std::vector<double> v = {5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 9.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
}

TEST(Percentile, EmptyThrows) {
  EXPECT_THROW(percentile({}, 0.5), std::invalid_argument);
}

TEST(Percentile, BadQuantileThrows) {
  const std::vector<double> v = {1.0};
  EXPECT_THROW(percentile(v, -0.1), std::invalid_argument);
  EXPECT_THROW(percentile(v, 1.1), std::invalid_argument);
}

TEST(Percentile, NonFiniteQuantileThrows) {
  // NaN slips past a naive `q < 0 || q > 1` check (both compares are
  // false) and would reach an undefined float->int cast.
  const std::vector<double> v = {1.0, 2.0};
  EXPECT_THROW(percentile(v, std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_THROW(percentile(v, std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW(percentile(v, -std::numeric_limits<double>::infinity()),
               std::invalid_argument);
}

TEST(MeanMin, Helpers) {
  const std::vector<double> v = {4.0, 2.0, 6.0};
  EXPECT_DOUBLE_EQ(mean_of(v), 4.0);
  EXPECT_DOUBLE_EQ(min_of(v), 2.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.9);    // bin 4
  h.add(-3.0);   // clamped to bin 0
  h.add(100.0);  // clamped to bin 4
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, NanIsDroppedNotBinned) {
  Histogram h(0.0, 10.0, 5);
  h.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.dropped(), 1u);
  for (std::size_t i = 0; i < h.bins(); ++i) EXPECT_EQ(h.bin_count(i), 0u);
  h.add(5.0);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.dropped(), 1u);
}

TEST(Histogram, InfinityClampsToEdgeBins) {
  // An infinite x used to be cast to an integer before clamping, which is
  // undefined behaviour; now the clamp happens in the double domain.
  Histogram h(0.0, 10.0, 5);
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.dropped(), 0u);
}

TEST(Histogram, Cdf) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(1.5);
  h.add(2.5);
  h.add(3.5);
  EXPECT_DOUBLE_EQ(h.cdf(0), 0.25);
  EXPECT_DOUBLE_EQ(h.cdf(3), 1.0);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 3), std::invalid_argument);
}

TEST(Histogram, CdfOutOfRangeThrows) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(h.cdf(2), std::out_of_range);
}

TEST(Histogram, EmptyCdfIsZero) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_DOUBLE_EQ(h.cdf(1), 0.0);
}

}  // namespace
}  // namespace fixedpart::util
