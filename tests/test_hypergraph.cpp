#include "hg/hypergraph.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "hg/builder.hpp"
#include "hg/stats.hpp"

namespace fixedpart::hg {
namespace {

Hypergraph triangle() {
  // Three vertices, three 2-pin nets forming a triangle.
  HypergraphBuilder b;
  const VertexId v0 = b.add_vertex(1);
  const VertexId v1 = b.add_vertex(2);
  const VertexId v2 = b.add_vertex(3);
  b.add_net(std::vector<VertexId>{v0, v1});
  b.add_net(std::vector<VertexId>{v1, v2});
  b.add_net(std::vector<VertexId>{v2, v0});
  return b.build();
}

TEST(Builder, CountsAndWeights) {
  const Hypergraph g = triangle();
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_nets(), 3);
  EXPECT_EQ(g.num_pins(), 6);
  EXPECT_EQ(g.vertex_weight(0), 1);
  EXPECT_EQ(g.vertex_weight(2), 3);
  EXPECT_EQ(g.total_weight(), 6);
  g.validate();
}

TEST(Builder, EmptyGraph) {
  HypergraphBuilder b;
  const Hypergraph g = b.build();
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_nets(), 0);
  g.validate();
}

TEST(Builder, DedupesPinsWithinNet) {
  HypergraphBuilder b;
  const VertexId v0 = b.add_vertex(1);
  const VertexId v1 = b.add_vertex(1);
  b.add_net(std::vector<VertexId>{v0, v1, v0, v1, v0});
  const Hypergraph g = b.build();
  EXPECT_EQ(g.net_size(0), 2);
  g.validate();
}

TEST(Builder, KeepsSinglePinNets) {
  HypergraphBuilder b;
  const VertexId v0 = b.add_vertex(1);
  b.add_vertex(1);
  b.add_net(std::vector<VertexId>{v0});
  const Hypergraph g = b.build();
  EXPECT_EQ(g.num_nets(), 1);
  EXPECT_EQ(g.net_size(0), 1);
  g.validate();
}

TEST(Builder, RejectsOutOfRangePin) {
  HypergraphBuilder b;
  b.add_vertex(1);
  EXPECT_THROW(b.add_net(std::vector<VertexId>{0, 5}), std::out_of_range);
  EXPECT_THROW(b.add_net(std::vector<VertexId>{-1}), std::out_of_range);
}

TEST(Builder, RejectsNegativeWeights) {
  HypergraphBuilder b;
  EXPECT_THROW(b.add_vertex(-1), std::invalid_argument);
  const VertexId v = b.add_vertex(1);
  EXPECT_THROW(b.add_net(std::vector<VertexId>{v}, -2), std::invalid_argument);
}

TEST(Builder, TransposeIsConsistent) {
  const Hypergraph g = triangle();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g.degree(v), 2);
    for (NetId e : g.nets_of(v)) {
      bool found = false;
      for (VertexId u : g.pins(e)) found |= (u == v);
      EXPECT_TRUE(found);
    }
  }
}

TEST(Builder, MultiResourceVertices) {
  HypergraphBuilder b(3);
  const Weight w0[] = {10, 1, 5};
  const Weight w1[] = {20, 2, 0};
  b.add_vertex(std::span<const Weight>(w0, 3));
  b.add_vertex(std::span<const Weight>(w1, 3));
  const Hypergraph g = b.build();
  EXPECT_EQ(g.num_resources(), 3);
  EXPECT_EQ(g.vertex_weight(0, 0), 10);
  EXPECT_EQ(g.vertex_weight(0, 2), 5);
  EXPECT_EQ(g.vertex_weight(1, 1), 2);
  EXPECT_EQ(g.total_weight(0), 30);
  EXPECT_EQ(g.total_weight(1), 3);
  EXPECT_EQ(g.total_weight(2), 5);
  g.validate();
}

TEST(Builder, WrongResourceCountThrows) {
  HypergraphBuilder b(2);
  const Weight w[] = {1};
  EXPECT_THROW(b.add_vertex(std::span<const Weight>(w, 1)),
               std::invalid_argument);
  EXPECT_THROW(b.add_vertex(Weight{5}), std::invalid_argument);
}

TEST(Builder, ZeroResourcesThrows) {
  EXPECT_THROW(HypergraphBuilder(0), std::invalid_argument);
}

TEST(Builder, ReserveValidatesDeclaredCounts) {
  HypergraphBuilder b;
  // Within range: a no-op other than capacity.
  b.reserve(100, 50, 400);
  b.add_vertex(1);
  EXPECT_EQ(b.build().num_vertices(), 1);
  // Declared counts beyond the 32-bit id space are rejected up front —
  // the one place the 32-bit decision is validated, instead of
  // overflowing VertexId deep inside add_vertex loops.
  const std::int64_t too_many =
      std::int64_t{std::numeric_limits<VertexId>::max()} + 1;
  EXPECT_THROW(b.reserve(too_many, 0, 0), std::invalid_argument);
  EXPECT_THROW(b.reserve(0, too_many, 0), std::invalid_argument);
  EXPECT_THROW(b.reserve(-1, 0, 0), std::invalid_argument);
}

TEST(Builder, PadFlags) {
  HypergraphBuilder b;
  b.add_vertex(1, /*is_pad=*/false);
  b.add_vertex(0, /*is_pad=*/true);
  const Hypergraph g = b.build();
  EXPECT_FALSE(g.is_pad(0));
  EXPECT_TRUE(g.is_pad(1));
  EXPECT_EQ(g.num_pads(), 1);
}

TEST(Builder, ReusableAfterBuild) {
  HypergraphBuilder b;
  b.add_vertex(1);
  const Hypergraph g1 = b.build();
  EXPECT_EQ(g1.num_vertices(), 1);
  b.add_vertex(2);
  b.add_vertex(3);
  const Hypergraph g2 = b.build();
  EXPECT_EQ(g2.num_vertices(), 2);
  EXPECT_EQ(g2.vertex_weight(0), 2);
}

TEST(Builder, MaxWeightedDegree) {
  HypergraphBuilder b;
  const VertexId v0 = b.add_vertex(1);
  const VertexId v1 = b.add_vertex(1);
  const VertexId v2 = b.add_vertex(1);
  b.add_net(std::vector<VertexId>{v0, v1}, 3);
  b.add_net(std::vector<VertexId>{v0, v2}, 4);
  const Hypergraph g = b.build();
  EXPECT_EQ(g.max_weighted_vertex_degree(), 7);  // vertex 0: nets 3 + 4
}

TEST(Stats, ComputesInstanceStatistics) {
  HypergraphBuilder b;
  const VertexId c0 = b.add_vertex(10);
  const VertexId c1 = b.add_vertex(90);
  const VertexId pad = b.add_vertex(0, /*is_pad=*/true);
  b.add_net(std::vector<VertexId>{c0, c1});
  b.add_net(std::vector<VertexId>{c1, pad});
  const Hypergraph g = b.build();
  const InstanceStats s = compute_stats(g);
  EXPECT_EQ(s.num_cells, 2);
  EXPECT_EQ(s.num_pads, 1);
  EXPECT_EQ(s.num_nets, 2);
  EXPECT_EQ(s.num_external_nets, 1);
  EXPECT_EQ(s.total_cell_area, 100);
  EXPECT_EQ(s.max_cell_area, 90);
  EXPECT_DOUBLE_EQ(s.max_cell_area_pct, 90.0);
  EXPECT_DOUBLE_EQ(s.avg_net_degree, 2.0);
  EXPECT_DOUBLE_EQ(s.avg_cell_degree, 1.5);
}

TEST(Stats, NetSizeHistogramCapsLargeNets) {
  HypergraphBuilder b;
  std::vector<VertexId> pins;
  for (int i = 0; i < 20; ++i) pins.push_back(b.add_vertex(1));
  b.add_net(std::span<const VertexId>(pins.data(), 2));
  b.add_net(std::span<const VertexId>(pins.data(), 2));
  b.add_net(std::span<const VertexId>(pins.data(), 20));
  const Hypergraph g = b.build();
  const auto hist = net_size_histogram(g, 16);
  EXPECT_EQ(hist[2], 2);
  EXPECT_EQ(hist[16], 1);  // the 20-pin net lands in the cap bin
}

}  // namespace
}  // namespace fixedpart::hg
