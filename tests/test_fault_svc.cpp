// Fault-injection telemetry (ctest -L fault): when the heartbeat watchdog
// cancels a genuinely stuck attempt, the obs layer must record it — the
// svc.watchdog_fires counter increments exactly once per cancelled
// attempt, and svc.heartbeat_age_seconds is observed above zero while the
// attempt hangs. Scrapes run concurrently with the fleet (the executor is
// driven from a helper thread), which is exactly how a live /metrics
// endpoint sees a hang in production.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "obs/registry.hpp"
#include "svc/executor.hpp"
#include "util/deadline.hpp"

namespace {

using namespace fixedpart;
using namespace fixedpart::svc;

JobSpec stuck_spec(const std::string& id) {
  JobSpec spec;
  spec.id = id;
  spec.seed = 1;
  return spec;
}

TEST(FaultSvcTelemetry, WatchdogFireIsCountedAndHeartbeatAgeVisible) {
  if (!obs::kEnabled) {
    GTEST_SKIP() << "built with FIXEDPART_OBS=OFF";
  }
  auto& registry = obs::Registry::global();
  // The executor registers these lazily on first run; registering here is
  // idempotent and makes the counter readable before the fleet starts.
  registry.counter("svc.watchdog_fires");
  const std::int64_t fires_before =
      registry.scrape().counter("svc.watchdog_fires");

  ExecutorConfig config;
  config.hang_seconds = 0.05;
  config.retry.retry_truncated = false;
  config.sleep_fn = [](double) {};
  auto runner = [](const JobSpec&, const util::Deadline& deadline) {
    // Simulated hang: loops until the supervisor's watchdog cancels it.
    while (!deadline.expired()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return JobResult{1, true};
  };
  BatchExecutor executor(runner, config);

  BatchReport report;
  std::thread fleet([&] {
    report = executor.run({stuck_spec("stuck")}, nullptr);
  });

  // While the attempt hangs, concurrent scrapes (a live /metrics reader)
  // must see the heartbeat age climbing above zero.
  double max_heartbeat_age = 0.0;
  for (int i = 0; i < 200; ++i) {
    const obs::Snapshot snap = registry.scrape();
    if (const obs::GaugeValue* age =
            snap.gauge("svc.heartbeat_age_seconds")) {
      max_heartbeat_age = std::max(max_heartbeat_age, age->value);
    }
    if (snap.counter("svc.watchdog_fires") > fires_before &&
        max_heartbeat_age > 0.0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  fleet.join();

  ASSERT_EQ(report.outcomes.size(), 1u);
  EXPECT_EQ(report.outcomes[0].status, JobStatus::kTruncated);
  EXPECT_GT(max_heartbeat_age, 0.0);
  // Exactly one fire: the cancel flag flips once per stuck attempt (the
  // supervisor's exchange() makes repeat ticks no-ops).
  EXPECT_EQ(registry.scrape().counter("svc.watchdog_fires"),
            fires_before + 1);
}

TEST(FaultSvcTelemetry, CleanFleetDoesNotFireWatchdog) {
  if (!obs::kEnabled) {
    GTEST_SKIP() << "built with FIXEDPART_OBS=OFF";
  }
  auto& registry = obs::Registry::global();
  registry.counter("svc.watchdog_fires");
  const std::int64_t fires_before =
      registry.scrape().counter("svc.watchdog_fires");

  ExecutorConfig config;
  config.hang_seconds = 5.0;  // armed, but nothing hangs
  auto runner = [](const JobSpec&, const util::Deadline&) {
    return JobResult{3, false};
  };
  BatchExecutor executor(runner, config);
  const BatchReport report = executor.run({stuck_spec("quick")}, nullptr);

  EXPECT_EQ(report.ok, 1);
  EXPECT_EQ(registry.scrape().counter("svc.watchdog_fires"), fires_before);
  // Per-state labeled counters moved for the finished job.
  EXPECT_GE(registry.scrape().counter(
                obs::labeled("svc.jobs", {{"state", "ok"}})),
            1);
}

}  // namespace
