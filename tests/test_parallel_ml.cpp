// Deterministic shared-memory parallel multilevel (docs/PARALLELISM.md).
// The load-bearing property under test is *scheduling-independent
// determinism*: thread count, pool size and grain must never change a
// result, only wall-clock. Every test here therefore compares runs across
// pool/thread/grain configurations for bit-identity, plus the usual
// feasibility and fixed-vertex invariants. The whole binary carries the
// `parallel` ctest label so it can be certified under TSan on its own
// (FIXEDPART_SANITIZE=thread; docs/ROBUSTNESS.md).

#include "ml/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gen/netlist_gen.hpp"
#include "hg/fixed.hpp"
#include "ml/multilevel.hpp"
#include "part/balance.hpp"
#include "part/fm.hpp"
#include "part/initial.hpp"
#include "part/partition.hpp"
#include "util/deadline.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace fixedpart::ml {
namespace {

gen::GeneratedCircuit small_circuit(std::uint64_t seed = 7) {
  gen::CircuitSpec spec;
  spec.name = "test";
  spec.num_cells = 600;
  spec.num_nets = 700;
  spec.num_pads = 24;
  spec.num_macros = 1;
  spec.macro_area_pct = 2.0;
  spec.seed = seed;
  return gen::generate_circuit(spec);
}

std::vector<hg::PartitionId> replay(const hg::Hypergraph& g,
                                    const MultilevelResult& result,
                                    part::PartitionState& state) {
  for (hg::VertexId v = 0; v < g.num_vertices(); ++v) {
    state.assign(v, result.assignment[v]);
  }
  return result.assignment;
}

// --- ThreadPool ----------------------------------------------------------

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  util::ThreadPool pool(3);
  constexpr std::int64_t kCount = 5000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, /*max_threads=*/4, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1,
                                                std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroWorkerPoolRunsEntirelyOnCaller) {
  util::ThreadPool pool(0);
  const auto caller = std::this_thread::get_id();
  std::atomic<int> foreign{0};
  pool.parallel_for(100, /*max_threads=*/8, [&](std::int64_t) {
    if (std::this_thread::get_id() != caller) {
      foreign.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(foreign.load(), 0);
}

TEST(ThreadPool, MaxThreadsOneStaysOnCaller) {
  util::ThreadPool pool(3);
  const auto caller = std::this_thread::get_id();
  std::atomic<int> foreign{0};
  pool.parallel_for(100, /*max_threads=*/1, [&](std::int64_t) {
    if (std::this_thread::get_id() != caller) {
      foreign.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(foreign.load(), 0);
}

TEST(ThreadPool, RethrowsFirstExceptionAfterDraining) {
  util::ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(1000, 3,
                        [&](std::int64_t i) {
                          ran.fetch_add(1, std::memory_order_relaxed);
                          if (i == 57) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The section drained: no stray worker is still touching `ran` after
  // parallel_for returned (TSan would flag it if one were).
  EXPECT_GE(ran.load(), 1);
  EXPECT_LE(ran.load(), 1000);
}

TEST(ThreadPool, NestedParallelForCompletes) {
  util::ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(4, 4, [&](std::int64_t) {
    pool.parallel_for(4, 4, [&](std::int64_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 16);
}

// --- parallel coarsening -------------------------------------------------

TEST(ParallelMatching, BitIdenticalForEveryPoolSizeAndGrain) {
  const auto circuit = small_circuit();
  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  const MatchingConfig matching;

  util::ThreadPool serial(0);
  util::ThreadPool narrow(1);
  util::ThreadPool wide(7);
  struct Case {
    util::ThreadPool* pool;
    int threads;
    VertexId grain;
  };
  const Case cases[] = {{&serial, 2, 4096}, {&narrow, 2, 4096},
                        {&wide, 8, 4096},   {&wide, 8, 64},
                        {&wide, 3, 17}};

  std::vector<VertexId> reference;
  for (const Case& c : cases) {
    ParallelConfig parallel;
    parallel.pool = c.pool;
    parallel.threads = c.threads;
    parallel.grain = c.grain;
    const auto match = parallel_heavy_edge_matching(circuit.graph, fixed,
                                                    matching, parallel);
    if (reference.empty()) {
      reference = match;
    } else {
      EXPECT_EQ(match, reference);
    }
  }

  // Sanity on the reference itself: symmetric, and it matched something.
  ASSERT_EQ(reference.size(),
            static_cast<std::size_t>(circuit.graph.num_vertices()));
  int matched = 0;
  for (hg::VertexId v = 0; v < circuit.graph.num_vertices(); ++v) {
    EXPECT_EQ(reference[static_cast<std::size_t>(
                  reference[static_cast<std::size_t>(v)])],
              v);
    matched += (reference[static_cast<std::size_t>(v)] != v);
  }
  EXPECT_GT(matched, circuit.graph.num_vertices() / 4);
}

TEST(ParallelMatching, NeverMatchesIncompatibleFixedVertices) {
  const auto circuit = small_circuit(11);
  hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  util::Rng pick(3);
  for (hg::VertexId v = 0; v < circuit.graph.num_vertices(); v += 3) {
    fixed.fix(v, static_cast<hg::PartitionId>(pick.next_below(2)));
  }
  ParallelConfig parallel;
  parallel.threads = 4;
  util::ThreadPool pool(3);
  parallel.pool = &pool;
  const auto match = parallel_heavy_edge_matching(circuit.graph, fixed,
                                                  MatchingConfig{}, parallel);
  for (hg::VertexId v = 0; v < circuit.graph.num_vertices(); ++v) {
    const VertexId u = match[static_cast<std::size_t>(v)];
    if (u == v) continue;
    // A merged cluster must still have at least one allowed part.
    EXPECT_NE(fixed.allowed_mask(v) & fixed.allowed_mask(u), 0u);
  }
}

TEST(ParallelMatching, ExpiredDeadlineYieldsValidPartialMatching) {
  // ISSUE 7 regression: the matching rounds must honour the deadline —
  // an already-expired budget returns promptly with a matching that is
  // still well-formed (symmetric, fixed-compatible), just sparser
  // (possibly all-singleton). Before the fix the rounds ran to
  // completion regardless, so a server budget could not bound them.
  const auto circuit = small_circuit();
  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  ParallelConfig parallel;
  parallel.threads = 4;
  util::ThreadPool pool(3);
  parallel.pool = &pool;
  const auto expired = util::Deadline::after_seconds(-1.0);
  ASSERT_TRUE(expired.expired());
  const auto match = parallel_heavy_edge_matching(
      circuit.graph, fixed, MatchingConfig{}, parallel, nullptr, &expired);
  ASSERT_EQ(match.size(),
            static_cast<std::size_t>(circuit.graph.num_vertices()));
  for (hg::VertexId v = 0; v < circuit.graph.num_vertices(); ++v) {
    EXPECT_EQ(match[static_cast<std::size_t>(
                  match[static_cast<std::size_t>(v)])],
              v);
  }
  // A live deadline with the same config must be a no-op: bit-identical
  // to the deadline-free reference.
  const auto generous = util::Deadline::after_seconds(3600.0);
  const auto with = parallel_heavy_edge_matching(
      circuit.graph, fixed, MatchingConfig{}, parallel, nullptr, &generous);
  const auto without = parallel_heavy_edge_matching(
      circuit.graph, fixed, MatchingConfig{}, parallel);
  EXPECT_EQ(with, without);
}

// --- full pipeline -------------------------------------------------------

MultilevelResult pipeline_run(const gen::GeneratedCircuit& circuit,
                              const hg::FixedAssignment& fixed,
                              const part::BalanceConstraint& balance,
                              int threads, VertexId grain = 4096,
                              util::ThreadPool* pool = nullptr) {
  MultilevelConfig config;
  config.parallel.threads = threads;
  config.parallel.grain = grain;
  config.parallel.pool = pool;
  return run_parallel_multilevel(circuit.graph, fixed, balance, 0xBE9C,
                                 config);
}

TEST(ParallelPipeline, BitIdenticalAcrossThreadCountsAndGrains) {
  const auto circuit = small_circuit();
  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 2.0);

  util::ThreadPool zero(0);
  const auto reference = pipeline_run(circuit, fixed, balance, 1);
  const auto two = pipeline_run(circuit, fixed, balance, 2);
  const auto eight = pipeline_run(circuit, fixed, balance, 8);
  const auto fine_grain = pipeline_run(circuit, fixed, balance, 8, 64);
  const auto no_workers =
      pipeline_run(circuit, fixed, balance, 8, 4096, &zero);

  EXPECT_EQ(two.cut, reference.cut);
  EXPECT_EQ(two.assignment, reference.assignment);
  EXPECT_EQ(eight.assignment, reference.assignment);
  EXPECT_EQ(fine_grain.assignment, reference.assignment);
  EXPECT_EQ(no_workers.assignment, reference.assignment);
}

TEST(ParallelPipeline, ProducesFeasibleBipartition) {
  const auto circuit = small_circuit();
  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 2.0);
  const auto result = pipeline_run(circuit, fixed, balance, 8);

  ASSERT_EQ(result.assignment.size(),
            static_cast<std::size_t>(circuit.graph.num_vertices()));
  part::PartitionState state(circuit.graph, 2);
  replay(circuit.graph, result, state);
  EXPECT_EQ(state.cut(), result.cut);
  EXPECT_TRUE(balance.satisfied(state.part_weights()));
}

TEST(ParallelPipeline, QualityComparableToSerialOracle) {
  const auto circuit = small_circuit();
  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 2.0);
  const auto result = pipeline_run(circuit, fixed, balance, 4);

  util::Rng rng(2);
  part::PartitionState random_state(circuit.graph, 2);
  part::random_feasible_assignment(random_state, fixed, balance, rng);
  EXPECT_LT(result.cut, random_state.cut() / 2);
}

TEST(ParallelPipeline, RespectsFixedVertices) {
  const auto circuit = small_circuit();
  hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  util::Rng pick(3);
  for (hg::VertexId v = 0; v < circuit.graph.num_vertices(); v += 5) {
    fixed.fix(v, static_cast<hg::PartitionId>(pick.next_below(2)));
  }
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 2.0);
  const auto serial = pipeline_run(circuit, fixed, balance, 1);
  const auto wide = pipeline_run(circuit, fixed, balance, 8);
  EXPECT_EQ(wide.assignment, serial.assignment);
  for (hg::VertexId v = 0; v < circuit.graph.num_vertices(); ++v) {
    const hg::PartitionId p = fixed.fixed_part(v);
    if (p != hg::kNoPartition) {
      EXPECT_EQ(wide.assignment[static_cast<std::size_t>(v)], p);
    }
  }
}

TEST(ParallelPipeline, RunDispatchesWhenThreadsExceedOne) {
  const auto circuit = small_circuit();
  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 2.0);
  const MultilevelPartitioner partitioner(circuit.graph, fixed, balance);

  MultilevelConfig config;
  config.parallel.threads = 2;
  util::Rng via_run_rng(11);
  const auto via_run = partitioner.run(via_run_rng, config);
  // run() seeds the pipeline with rng.next(); replaying that derivation
  // must reproduce the dispatched result exactly.
  util::Rng replay_rng(11);
  const auto direct = run_parallel_multilevel(circuit.graph, fixed, balance,
                                              replay_rng.next(), config);
  EXPECT_EQ(via_run.cut, direct.cut);
  EXPECT_EQ(via_run.assignment, direct.assignment);
}

TEST(ParallelPipeline, ExpiredDeadlineStillReturnsCompleteAssignment) {
  const auto circuit = small_circuit();
  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 2.0);
  const util::Deadline deadline = util::Deadline::after_seconds(0.0);
  MultilevelConfig config;
  config.parallel.threads = 4;
  config.deadline = &deadline;
  const auto result = run_parallel_multilevel(circuit.graph, fixed, balance,
                                              0xBE9C, config);
  EXPECT_TRUE(result.truncated);
  ASSERT_EQ(result.assignment.size(),
            static_cast<std::size_t>(circuit.graph.num_vertices()));
  part::PartitionState state(circuit.graph, 2);
  replay(circuit.graph, result, state);
  EXPECT_EQ(state.cut(), result.cut);
  EXPECT_TRUE(balance.satisfied(state.part_weights()));
}

// --- parallel multistart -------------------------------------------------

TEST(BestOfParallel, ThreadCountNeverChangesTheResult) {
  const auto circuit = small_circuit();
  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 2.0);
  const MultilevelPartitioner partitioner(circuit.graph, fixed, balance);

  util::ThreadPool zero(0);
  MultilevelConfig pooled;
  pooled.parallel.pool = &zero;

  const auto one =
      partitioner.best_of_parallel(4, 1, 0xD00D, MultilevelConfig{});
  const auto two =
      partitioner.best_of_parallel(4, 2, 0xD00D, MultilevelConfig{});
  const auto eight =
      partitioner.best_of_parallel(4, 8, 0xD00D, MultilevelConfig{});
  const auto no_workers = partitioner.best_of_parallel(4, 8, 0xD00D, pooled);

  EXPECT_EQ(two.cut, one.cut);
  EXPECT_EQ(two.assignment, one.assignment);
  EXPECT_EQ(eight.assignment, one.assignment);
  EXPECT_EQ(no_workers.assignment, one.assignment);
}

TEST(BestOfParallel, NeverWorseThanTheSameStreamsRunSerially) {
  const auto circuit = small_circuit();
  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 2.0);
  const MultilevelPartitioner partitioner(circuit.graph, fixed, balance);

  const auto best =
      partitioner.best_of_parallel(4, 4, 0xABCD, MultilevelConfig{});
  // Replay the stream derivation best_of_parallel documents: each start s
  // runs on the s-th fork of Rng(seed).
  util::Rng root(0xABCD);
  Weight manual_best = std::numeric_limits<Weight>::max();
  for (int s = 0; s < 4; ++s) {
    util::Rng stream = root.fork();
    manual_best = std::min(
        manual_best, partitioner.run(stream, MultilevelConfig{}).cut);
  }
  EXPECT_EQ(best.cut, manual_best);
}

// --- parallel FM gain initialization -------------------------------------

TEST(FmParallelGainInit, BitIdenticalToSerialInit) {
  const auto circuit = small_circuit();
  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 2.0);

  auto refine_with = [&](int threads) {
    part::PartitionState state(circuit.graph, 2);
    util::Rng rng(0xFEED);
    part::random_feasible_assignment(state, fixed, balance, rng,
                                     /*require_feasible=*/false);
    part::FmBipartitioner fm(circuit.graph, fixed, balance);
    part::FmConfig config;
    config.threads = threads;
    const auto result = fm.refine(state, rng, config);
    std::vector<hg::PartitionId> assignment(
        static_cast<std::size_t>(circuit.graph.num_vertices()));
    for (hg::VertexId v = 0; v < circuit.graph.num_vertices(); ++v) {
      assignment[static_cast<std::size_t>(v)] = state.part_of(v);
    }
    return std::pair{result.final_cut, assignment};
  };

  const auto [serial_cut, serial_assignment] = refine_with(1);
  const auto [parallel_cut, parallel_assignment] = refine_with(4);
  EXPECT_EQ(parallel_cut, serial_cut);
  EXPECT_EQ(parallel_assignment, serial_assignment);
}

}  // namespace
}  // namespace fixedpart::ml
