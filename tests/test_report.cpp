#include "part/report.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hg/builder.hpp"

namespace fixedpart::part {
namespace {

hg::Hypergraph square4() {
  hg::HypergraphBuilder b;
  for (int i = 0; i < 4; ++i) b.add_vertex(1);
  b.add_net(std::vector<hg::VertexId>{0, 1});
  b.add_net(std::vector<hg::VertexId>{1, 2});
  b.add_net(std::vector<hg::VertexId>{2, 3});
  b.add_net(std::vector<hg::VertexId>{3, 0});
  return b.build();
}

TEST(SolutionReport, GradesBalancedSolution) {
  const hg::Hypergraph g = square4();
  const hg::FixedAssignment fixed(4, 2);
  const auto balance = BalanceConstraint::relative(g, 2, 10.0);
  const std::vector<hg::PartitionId> assignment = {0, 0, 1, 1};
  const SolutionReport report =
      evaluate_solution(g, fixed, balance, assignment);
  EXPECT_EQ(report.cut, 2);
  EXPECT_TRUE(report.balanced);
  EXPECT_TRUE(report.strictly_balanced);
  EXPECT_TRUE(report.valid());
  EXPECT_EQ(report.fixed_violations, 0);
  EXPECT_DOUBLE_EQ(report.imbalance_pct[0], 0.0);
  EXPECT_EQ(report.part_weights[0], 2);
}

TEST(SolutionReport, DetectsImbalanceAndViolations) {
  const hg::Hypergraph g = square4();
  hg::FixedAssignment fixed(4, 2);
  fixed.fix(0, 1);  // but the assignment puts 0 in part 0
  const auto balance = BalanceConstraint::relative(g, 2, 10.0);
  const std::vector<hg::PartitionId> assignment = {0, 0, 0, 1};
  const SolutionReport report =
      evaluate_solution(g, fixed, balance, assignment);
  EXPECT_EQ(report.cut, 2);
  EXPECT_FALSE(report.balanced);  // 3 vs 1 at 10% tolerance
  EXPECT_FALSE(report.valid());
  EXPECT_EQ(report.fixed_violations, 1);
  // Worst deviation: |3 - 2| / 2 = 50%.
  EXPECT_DOUBLE_EQ(report.imbalance_pct[0], 50.0);
}

TEST(SolutionReport, MultiResourceImbalance) {
  hg::HypergraphBuilder b(2);
  const Weight w0[] = {2, 1};
  const Weight w1[] = {2, 3};
  b.add_vertex(std::span<const Weight>(w0, 2));
  b.add_vertex(std::span<const Weight>(w1, 2));
  const hg::Hypergraph g = b.build();
  const hg::FixedAssignment fixed(2, 2);
  const auto balance = BalanceConstraint::relative(g, 2, 100.0);
  const std::vector<hg::PartitionId> assignment = {0, 1};
  const SolutionReport report =
      evaluate_solution(g, fixed, balance, assignment);
  // Resource 0 perfectly split (2/2); resource 1 is 1 vs 3 (perfect 2).
  EXPECT_DOUBLE_EQ(report.imbalance_pct[0], 0.0);
  EXPECT_DOUBLE_EQ(report.imbalance_pct[1], 50.0);
}

TEST(SolutionReport, Validation) {
  const hg::Hypergraph g = square4();
  const hg::FixedAssignment fixed(4, 2);
  const auto balance = BalanceConstraint::relative(g, 2, 10.0);
  const std::vector<hg::PartitionId> too_short = {0, 1};
  EXPECT_THROW(evaluate_solution(g, fixed, balance, too_short),
               std::invalid_argument);
  const std::vector<hg::PartitionId> bad_part = {0, 1, 0, 7};
  EXPECT_THROW(evaluate_solution(g, fixed, balance, bad_part),
               std::invalid_argument);
  const hg::FixedAssignment wrong_k(4, 4);
  const std::vector<hg::PartitionId> ok = {0, 1, 0, 1};
  EXPECT_THROW(evaluate_solution(g, wrong_k, balance, ok),
               std::invalid_argument);
}

}  // namespace
}  // namespace fixedpart::part
