#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace fixedpart::util {
namespace {

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  // Every line has the same start-of-column offsets: "value" column
  // starts after the widest first cell ("longer" = 6 chars + 2 spaces).
  EXPECT_NE(s.find("x       1"), std::string::npos);
}

TEST(Table, CountsRowsAndColumns) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.columns(), 3u);
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, CsvEscaping) {
  Table t({"a"});
  t.add_row({"plain"});
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("plain\n"), std::string::npos);
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, PrintWritesToStream) {
  Table t({"h"});
  t.add_row({"v"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str(), t.to_string());
}

TEST(Fmt, Decimals) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.0, 0), "3");
  EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

TEST(Fmt, CutTimeCell) {
  EXPECT_EQ(fmt_cut_time(123.0, 4.5), "123.0 (4.50s)");
}

}  // namespace
}  // namespace fixedpart::util
