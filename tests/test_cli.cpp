#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace fixedpart::util {
namespace {

Cli make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ParsesKeyValue) {
  const Cli cli = make({"--trials=5", "--name=ibm01"});
  EXPECT_EQ(cli.get_int("trials", 0), 5);
  EXPECT_EQ(cli.get_or("name", ""), "ibm01");
}

TEST(Cli, BareFlagIsTrue) {
  const Cli cli = make({"--verbose"});
  EXPECT_TRUE(cli.get_bool("verbose", false));
}

TEST(Cli, DefaultsWhenAbsent) {
  const Cli cli = make({});
  EXPECT_EQ(cli.get_int("trials", 7), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("tol", 2.0), 2.0);
  EXPECT_FALSE(cli.get("missing").has_value());
}

TEST(Cli, Positional) {
  const Cli cli = make({"input.hgr", "--k=2", "out.txt"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.hgr");
  EXPECT_EQ(cli.positional()[1], "out.txt");
}

TEST(Cli, BooleanSpellings) {
  EXPECT_TRUE(make({"--x=yes"}).get_bool("x", false));
  EXPECT_TRUE(make({"--x=1"}).get_bool("x", false));
  EXPECT_FALSE(make({"--x=no"}).get_bool("x", true));
  EXPECT_FALSE(make({"--x=0"}).get_bool("x", true));
  EXPECT_THROW(make({"--x=maybe"}).get_bool("x", true), std::invalid_argument);
}

TEST(Cli, DoubleParsing) {
  EXPECT_DOUBLE_EQ(make({"--t=2.5"}).get_double("t", 0.0), 2.5);
}

TEST(Cli, RequireKnownAcceptsKnown) {
  const Cli cli = make({"--a=1", "--b=2"});
  EXPECT_NO_THROW(cli.require_known({"a", "b", "c"}));
}

TEST(Cli, RequireKnownRejectsUnknown) {
  const Cli cli = make({"--typo=1"});
  EXPECT_THROW(cli.require_known({"trials"}), std::invalid_argument);
}

TEST(Cli, LastDuplicateWins) {
  const Cli cli = make({"--x=1", "--x=2"});
  EXPECT_EQ(cli.get_int("x", 0), 2);
}

}  // namespace
}  // namespace fixedpart::util
