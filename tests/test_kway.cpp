#include "part/kway_fm.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hg/builder.hpp"
#include "part/initial.hpp"
#include "util/rng.hpp"

namespace fixedpart::part {
namespace {

hg::Hypergraph random_graph(util::Rng& rng, int n, int nets) {
  hg::HypergraphBuilder b;
  for (int i = 0; i < n; ++i) {
    b.add_vertex(1 + static_cast<Weight>(rng.next_below(3)));
  }
  for (int e = 0; e < nets; ++e) {
    std::vector<hg::VertexId> pins;
    const int degree = 2 + static_cast<int>(rng.next_below(4));
    for (int d = 0; d < degree; ++d) {
      pins.push_back(static_cast<hg::VertexId>(
          rng.next_below(static_cast<std::uint64_t>(n))));
    }
    b.add_net(pins);
  }
  return b.build();
}

/// Four 4-clusters; optimal 4-way cut separates them.
hg::Hypergraph four_clusters() {
  hg::HypergraphBuilder b;
  for (int i = 0; i < 16; ++i) b.add_vertex(1);
  for (int c = 0; c < 4; ++c) {
    const int base = 4 * c;
    for (int i = 0; i < 4; ++i) {
      for (int j = i + 1; j < 4; ++j) {
        b.add_net(std::vector<hg::VertexId>{base + i, base + j});
      }
    }
  }
  b.add_net(std::vector<hg::VertexId>{0, 4});
  b.add_net(std::vector<hg::VertexId>{8, 12});
  return b.build();
}

TEST(KwayFm, ImprovesFourWayCut) {
  const hg::Hypergraph g = four_clusters();
  const hg::FixedAssignment fixed(g.num_vertices(), 4);
  const auto balance = BalanceConstraint::relative(g, 4, 50.0);
  KwayFmRefiner refiner(g, fixed, balance);

  PartitionState state(g, 4);
  for (hg::VertexId v = 0; v < 16; ++v) state.assign(v, v % 4);
  const Weight initial = state.cut();
  util::Rng rng(1);
  const auto result = refiner.refine(state, rng, KwayConfig{});
  EXPECT_LT(result.final_cut, initial);
  EXPECT_EQ(result.final_cut, state.cut());
  EXPECT_EQ(state.cut(), state.recompute_cut());
}

TEST(KwayFm, ReachesOptimalOnSeparableInstance) {
  const hg::Hypergraph g = four_clusters();
  const hg::FixedAssignment fixed(g.num_vertices(), 4);
  const auto balance = BalanceConstraint::relative(g, 4, 50.0);
  KwayFmRefiner refiner(g, fixed, balance);
  // Multistart flat k-way FM should find the 2-cut clustering.
  Weight best = std::numeric_limits<Weight>::max();
  util::Rng rng(2);
  for (int s = 0; s < 20; ++s) {
    PartitionState state(g, 4);
    random_feasible_assignment(state, fixed, balance, rng);
    refiner.refine(state, rng, KwayConfig{});
    best = std::min(best, state.cut());
  }
  EXPECT_EQ(best, 2);
}

TEST(KwayFm, RespectsFixedAndOrSets) {
  util::Rng gen(3);
  const hg::Hypergraph g = random_graph(gen, 60, 120);
  hg::FixedAssignment fixed(g.num_vertices(), 4);
  fixed.fix(0, 3);
  fixed.fix(1, 0);
  fixed.restrict_to(2, 0b0110);  // parts 1 or 2
  const auto balance = BalanceConstraint::relative(g, 4, 30.0);
  KwayFmRefiner refiner(g, fixed, balance);
  EXPECT_EQ(refiner.num_movable(), g.num_vertices() - 2);

  PartitionState state(g, 4);
  util::Rng rng(4);
  random_feasible_assignment(state, fixed, balance, rng);
  refiner.refine(state, rng, KwayConfig{});
  EXPECT_EQ(state.part_of(0), 3);
  EXPECT_EQ(state.part_of(1), 0);
  EXPECT_TRUE(state.part_of(2) == 1 || state.part_of(2) == 2);
  check_respects_fixed(state, fixed);
}

TEST(KwayFm, RefineRejectsIncompleteState) {
  util::Rng gen(5);
  const hg::Hypergraph g = random_graph(gen, 10, 15);
  const hg::FixedAssignment fixed(g.num_vertices(), 3);
  const auto balance = BalanceConstraint::relative(g, 3, 30.0);
  KwayFmRefiner refiner(g, fixed, balance);
  PartitionState state(g, 3);
  util::Rng rng(6);
  EXPECT_THROW(refiner.refine(state, rng, KwayConfig{}),
               std::invalid_argument);
}

struct KwayParam {
  std::uint64_t seed;
  int parts;
  double tolerance;
  double cutoff;
  double fixed_fraction;
};

class KwayProperty : public ::testing::TestWithParam<KwayParam> {};

TEST_P(KwayProperty, InvariantsHold) {
  const auto param = GetParam();
  util::Rng gen(param.seed);
  const hg::Hypergraph g = random_graph(gen, 80, 160);
  hg::FixedAssignment fixed(g.num_vertices(), param.parts);
  const auto fixed_count =
      static_cast<hg::VertexId>(param.fixed_fraction * 80);
  for (hg::VertexId i = 0; i < fixed_count; ++i) {
    fixed.fix(i, static_cast<hg::PartitionId>(
                     gen.next_below(static_cast<std::uint64_t>(param.parts))));
  }
  const auto balance = BalanceConstraint::relative(g, param.parts,
                                                   param.tolerance);
  KwayFmRefiner refiner(g, fixed, balance);

  PartitionState state(g, param.parts);
  util::Rng rng(param.seed ^ 0x5555);
  random_feasible_assignment(state, fixed, balance, rng);
  const Weight initial = state.cut();

  KwayConfig config;
  config.pass_cutoff = param.cutoff;
  const auto result = refiner.refine(state, rng, config);

  EXPECT_LE(result.final_cut, initial);
  EXPECT_EQ(result.final_cut, state.cut());
  EXPECT_EQ(state.cut(), state.recompute_cut());
  EXPECT_TRUE(balance.satisfied(state.part_weights()));
  check_respects_fixed(state, fixed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KwayProperty,
    ::testing::Values(KwayParam{31, 2, 10.0, 1.0, 0.0},
                      KwayParam{32, 3, 10.0, 1.0, 0.2},
                      KwayParam{33, 4, 20.0, 1.0, 0.3},
                      KwayParam{34, 4, 20.0, 0.25, 0.0},
                      KwayParam{35, 8, 30.0, 1.0, 0.1},
                      KwayParam{36, 2, 5.0, 0.1, 0.5},
                      KwayParam{37, 6, 25.0, 0.5, 0.25}));

}  // namespace
}  // namespace fixedpart::part
