// Tests for the supervised batch execution engine (src/svc): JSONL
// round-trips, manifest validation, journal durability (torn trailing
// lines, compaction), retry/backoff classification, crash simulation +
// resume, the determinism guard across worker counts, the hang watchdog,
// and graceful drain. ctest label: svc.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "hg/io_common.hpp"
#include "svc/checkpoint.hpp"
#include "svc/executor.hpp"
#include "svc/job.hpp"
#include "util/errors.hpp"

namespace fixedpart::svc {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = fs::temp_directory_path() /
            ("fp_svc_" + std::string(info ? info->name() : "test") + "_" +
             std::to_string(counter_++));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  fs::path path_;
  static inline int counter_ = 0;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

hg::LineReader reader_at(std::istringstream& stream,
                         const std::string& source = "test") {
  return hg::LineReader(stream, source, '#');
}

/// A runner that never touches the filesystem: cut = seed so outcomes are
/// trivially deterministic, and specific job ids trigger failures.
JobResult scripted_runner(const JobSpec& spec, const util::Deadline&) {
  if (spec.regime == "rand" && spec.instance == "explode") {
    throw std::runtime_error("scripted internal failure");
  }
  return JobResult{static_cast<Weight>(spec.seed % 1000), false};
}

JobSpec simple_spec(const std::string& id, std::uint64_t seed) {
  JobSpec spec;
  spec.id = id;
  spec.seed = seed;
  return spec;
}

// ---------------------------------------------------------------- JSON --

TEST(SvcJob, FileSpecRoundTripsThroughJson) {
  JobSpec spec;
  spec.id = "weird \"id\"\twith\\escapes";
  spec.instance = "data/ibm01.hgr";
  spec.regime = "rand";
  spec.fixed_pct = 12.5;
  spec.starts = 8;
  spec.seed = 123456789012345ULL;
  spec.tolerance_pct = 10.0;
  spec.budget_seconds = 1.5;
  spec.preflight = true;

  const std::string line = to_json_line(spec);
  // File-backed specs carry no generator params.
  EXPECT_EQ(line.find("circuit"), std::string::npos);
  std::istringstream stream;
  const JobSpec back = job_spec_from_json(line, reader_at(stream));
  EXPECT_EQ(back.id, spec.id);
  EXPECT_EQ(back.instance, spec.instance);
  EXPECT_EQ(back.regime, spec.regime);
  EXPECT_DOUBLE_EQ(back.fixed_pct, spec.fixed_pct);
  EXPECT_EQ(back.starts, spec.starts);
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_DOUBLE_EQ(back.tolerance_pct, spec.tolerance_pct);
  EXPECT_DOUBLE_EQ(back.budget_seconds, spec.budget_seconds);
  EXPECT_TRUE(back.preflight);
}

TEST(SvcJob, GeneratedSpecRoundTripsThroughJson) {
  JobSpec spec;
  spec.id = "gen-job";
  spec.circuit = 3;
  spec.scale = "paper";
  spec.regime = "good";
  spec.fixed_pct = 40.0;
  spec.seed = 99;

  const std::string line = to_json_line(spec);
  std::istringstream stream;
  const JobSpec back = job_spec_from_json(line, reader_at(stream));
  EXPECT_TRUE(back.instance.empty());
  EXPECT_EQ(back.circuit, spec.circuit);
  EXPECT_EQ(back.scale, spec.scale);
  EXPECT_EQ(back.regime, spec.regime);
  EXPECT_DOUBLE_EQ(back.fixed_pct, spec.fixed_pct);
  EXPECT_EQ(back.seed, spec.seed);
}

TEST(SvcJob, OutcomeRoundTripsThroughJson) {
  JobOutcome outcome;
  outcome.id = "job-42";
  outcome.status = JobStatus::kPoisoned;
  outcome.error = ErrorClass::kTransient;
  outcome.message = "line1\nline2 \"quoted\"";
  outcome.attempts = 3;
  outcome.cut = 777;
  outcome.truncated = true;
  outcome.seconds = 1.25;

  const std::string line = to_json_line(outcome);
  std::istringstream stream;
  const JobOutcome back = job_outcome_from_json(line, reader_at(stream));
  EXPECT_EQ(back.id, outcome.id);
  EXPECT_EQ(back.status, outcome.status);
  EXPECT_EQ(back.error, outcome.error);
  EXPECT_EQ(back.message, outcome.message);
  EXPECT_EQ(back.attempts, outcome.attempts);
  EXPECT_EQ(back.cut, outcome.cut);
  EXPECT_TRUE(back.truncated);
  EXPECT_DOUBLE_EQ(back.seconds, outcome.seconds);
}

TEST(SvcJob, CanonicalLineOmitsWallTime) {
  JobOutcome a;
  a.id = "j";
  a.cut = 5;
  a.seconds = 0.001;
  JobOutcome b = a;
  b.seconds = 99.9;
  EXPECT_EQ(to_canonical_json_line(a), to_canonical_json_line(b));
  EXPECT_NE(to_json_line(a), to_json_line(b));
  EXPECT_EQ(to_canonical_json_line(a).find("seconds"), std::string::npos);
}

TEST(SvcJob, MalformedJsonFailsWithLineContext) {
  std::istringstream stream;
  const auto at = reader_at(stream, "bad.jsonl");
  EXPECT_THROW(job_spec_from_json("{\"id\": \"x\"", at), hg::ParseError);
  EXPECT_THROW(job_spec_from_json("{\"id\": \"x\"} trailing", at),
               hg::ParseError);
  EXPECT_THROW(
      job_spec_from_json("{\"id\": \"x\", \"id\": \"y\"}", at),
      hg::ParseError);
  EXPECT_THROW(job_spec_from_json("{\"id\": \"x\", \"circuit\": \"NaN\"}", at),
               hg::ParseError);
  try {
    job_spec_from_json("not json at all", at);
    FAIL() << "expected ParseError";
  } catch (const hg::ParseError& error) {
    EXPECT_NE(std::string(error.what()).find("bad.jsonl"), std::string::npos);
  }
}

// ------------------------------------------------------------ manifest --

TEST(SvcManifest, LoadsCommentsAndBlankLines) {
  std::istringstream in(
      "# a manifest\n"
      "\n" +
      to_json_line(simple_spec("a", 1)) + "\n" +
      to_json_line(simple_spec("b", 2)) + "\n");
  const auto manifest = load_manifest(in, "m.jsonl");
  ASSERT_EQ(manifest.size(), 2u);
  EXPECT_EQ(manifest[0].id, "a");
  EXPECT_EQ(manifest[1].id, "b");
}

TEST(SvcManifest, RejectsDuplicateIds) {
  std::istringstream in(to_json_line(simple_spec("a", 1)) + "\n" +
                        to_json_line(simple_spec("a", 2)) + "\n");
  EXPECT_THROW(load_manifest(in, "m.jsonl"), util::InputError);
}

TEST(SvcManifest, RejectsOutOfRangeKnobs) {
  JobSpec bad = simple_spec("a", 1);
  bad.fixed_pct = 120.0;
  std::istringstream in(to_json_line(bad) + "\n");
  EXPECT_THROW(load_manifest(in, "m.jsonl"), util::InputError);

  JobSpec bad2 = simple_spec("b", 1);
  bad2.regime = "sideways";
  std::istringstream in2(to_json_line(bad2) + "\n");
  EXPECT_THROW(load_manifest(in2, "m.jsonl"), util::InputError);
}

TEST(SvcManifest, MissingFileIsInputError) {
  EXPECT_THROW(load_manifest_file("/nonexistent/manifest.jsonl"),
               util::InputError);
}

// ------------------------------------------------------------- journal --

TEST(SvcJournal, MissingFileLoadsEmpty) {
  TempDir dir;
  CheckpointJournal journal(dir.file("none.jsonl"));
  EXPECT_TRUE(journal.load().empty());
}

TEST(SvcJournal, AppendThenLoadRoundTrips) {
  TempDir dir;
  CheckpointJournal journal(dir.file("j.jsonl"));
  JobOutcome outcome;
  outcome.id = "a";
  outcome.cut = 11;
  journal.append(outcome);
  outcome.id = "b";
  outcome.cut = 22;
  journal.append(outcome);
  const auto loaded = journal.load();
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].id, "a");
  EXPECT_EQ(loaded[1].cut, 22);
}

TEST(SvcJournal, TornTrailingLineIsDiscardedAndCompacted) {
  TempDir dir;
  const std::string path = dir.file("torn.jsonl");
  JobOutcome outcome;
  outcome.id = "whole";
  const std::string good_line = to_json_line(outcome) + "\n";
  {
    std::ofstream out(path, std::ios::binary);
    out << good_line << "{\"id\": \"torn";  // crash mid-write, no newline
  }
  CheckpointJournal journal(path);
  auto loaded = journal.load();
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].id, "whole");

  // open_for_append compacts the file to the parseable prefix on disk.
  loaded = journal.open_for_append();
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(read_file(path), good_line);
}

TEST(SvcJournal, CompleteCorruptLineThrows) {
  TempDir dir;
  const std::string path = dir.file("corrupt.jsonl");
  {
    std::ofstream out(path, std::ios::binary);
    out << "{\"id\": \"ok\"}\n"
        << "{\"id\": \"dup\", \"id\": \"dup\"}\n";  // complete but invalid
  }
  CheckpointJournal journal(path);
  EXPECT_THROW(journal.load(), hg::ParseError);
}

TEST(SvcJournal, CanonicalJournalSortsAndStripsTiming) {
  JobOutcome b;
  b.id = "b";
  b.seconds = 2.0;
  JobOutcome a;
  a.id = "a";
  a.seconds = 1.0;
  const auto lines = canonical_journal({b, a});
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_LT(lines[0], lines[1]);
  EXPECT_NE(lines[0].find("\"a\""), std::string::npos);
}

// ------------------------------------------------------------ executor --

TEST(SvcExecutor, RunsAllJobsAndReportsCounts) {
  std::vector<JobSpec> manifest = {simple_spec("a", 10), simple_spec("b", 20),
                                   simple_spec("c", 30)};
  ExecutorConfig config;
  config.workers = 2;
  BatchExecutor executor(scripted_runner, config);
  const BatchReport report = executor.run(manifest, nullptr);
  ASSERT_EQ(report.outcomes.size(), 3u);
  EXPECT_EQ(report.ok, 3);
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(report.exit_code(), 0);
  // Outcomes come back in manifest order regardless of completion order.
  EXPECT_EQ(report.outcomes[0].id, "a");
  EXPECT_EQ(report.outcomes[1].id, "b");
  EXPECT_EQ(report.outcomes[2].id, "c");
  EXPECT_EQ(report.outcomes[1].cut, 20);
}

TEST(SvcExecutor, RejectsDuplicateManifestIds) {
  std::vector<JobSpec> manifest = {simple_spec("a", 1), simple_spec("a", 2)};
  BatchExecutor executor(scripted_runner, ExecutorConfig{});
  EXPECT_THROW(executor.run(manifest, nullptr), util::InputError);
}

TEST(SvcExecutor, TransientFailuresRetryWithDeterministicBackoff) {
  std::atomic<int> calls{0};
  std::vector<double> delays;
  ExecutorConfig config;
  config.retry.max_attempts = 4;
  config.retry.backoff_base_seconds = 0.5;
  config.retry.jitter_fraction = 0.25;
  config.fault_hook = [&](const JobSpec&, int attempt) {
    calls.fetch_add(1);
    if (attempt <= 2) throw TransientError("injected hiccup");
  };
  config.sleep_fn = [&](double seconds) { delays.push_back(seconds); };
  BatchExecutor executor(scripted_runner, config);
  const BatchReport report =
      executor.run({simple_spec("flaky", 7)}, nullptr);
  ASSERT_EQ(report.outcomes.size(), 1u);
  EXPECT_EQ(report.outcomes[0].status, JobStatus::kOk);
  EXPECT_EQ(report.outcomes[0].error, ErrorClass::kNone);
  EXPECT_EQ(report.outcomes[0].attempts, 3);
  EXPECT_EQ(report.retried, 1);
  EXPECT_EQ(calls.load(), 3);
  // Two backoffs: base*[1,2) then 2*base*[1,2) — exponential with jitter.
  ASSERT_EQ(delays.size(), 2u);
  EXPECT_GE(delays[0], 0.5);
  EXPECT_LT(delays[0], 0.5 * 1.25);
  EXPECT_GE(delays[1], 1.0);
  EXPECT_LT(delays[1], 1.0 * 1.25);

  // Deterministic: the same fleet backs off identically.
  std::vector<double> delays2;
  config.sleep_fn = [&](double seconds) { delays2.push_back(seconds); };
  BatchExecutor executor2(scripted_runner, config);
  executor2.run({simple_spec("flaky", 7)}, nullptr);
  EXPECT_EQ(delays, delays2);
}

TEST(SvcExecutor, PermanentFailuresFailFastWithoutRetry) {
  std::atomic<int> calls{0};
  ExecutorConfig config;
  config.retry.max_attempts = 5;
  config.sleep_fn = [](double) {};
  config.fault_hook = [&](const JobSpec& spec, int) {
    calls.fetch_add(1);
    if (spec.id == "badfile") throw util::InputError("no such instance");
    if (spec.id == "overfull") throw util::InfeasibleError("pins overflow");
  };
  BatchExecutor executor(scripted_runner, config);
  const BatchReport report = executor.run(
      {simple_spec("badfile", 1), simple_spec("overfull", 2)}, nullptr);
  ASSERT_EQ(report.outcomes.size(), 2u);
  EXPECT_EQ(report.outcomes[0].status, JobStatus::kFailed);
  EXPECT_EQ(report.outcomes[0].error, ErrorClass::kInput);
  EXPECT_EQ(report.outcomes[0].attempts, 1);
  EXPECT_EQ(report.outcomes[1].status, JobStatus::kFailed);
  EXPECT_EQ(report.outcomes[1].error, ErrorClass::kInfeasible);
  EXPECT_EQ(report.outcomes[1].attempts, 1);
  EXPECT_EQ(calls.load(), 2);  // one attempt each, no retries
  EXPECT_EQ(report.failed, 2);
  // Input outranks infeasible in the fleet exit code.
  EXPECT_EQ(report.exit_code(), util::kExitInput);
}

TEST(SvcExecutor, PoisonedAfterMaxAttempts) {
  ExecutorConfig config;
  config.retry.max_attempts = 3;
  config.sleep_fn = [](double) {};
  config.fault_hook = [](const JobSpec&, int) {
    throw TransientError("always down");
  };
  BatchExecutor executor(scripted_runner, config);
  const BatchReport report = executor.run({simple_spec("cursed", 3)}, nullptr);
  ASSERT_EQ(report.outcomes.size(), 1u);
  EXPECT_EQ(report.outcomes[0].status, JobStatus::kPoisoned);
  EXPECT_EQ(report.outcomes[0].error, ErrorClass::kTransient);
  EXPECT_EQ(report.outcomes[0].attempts, 3);
  EXPECT_NE(report.outcomes[0].message.find("always down"),
            std::string::npos);
  EXPECT_EQ(report.poisoned, 1);
  EXPECT_EQ(report.exit_code(), util::kExitInternal);
}

TEST(SvcExecutor, InternalErrorsAreRetriedThenPoisoned) {
  ExecutorConfig config;
  config.retry.max_attempts = 2;
  config.sleep_fn = [](double) {};
  std::vector<JobSpec> manifest = {simple_spec("boom", 1)};
  manifest[0].regime = "rand";
  manifest[0].instance = "explode";  // scripted_runner throws runtime_error
  BatchExecutor executor(scripted_runner, config);
  const BatchReport report = executor.run(manifest, nullptr);
  ASSERT_EQ(report.outcomes.size(), 1u);
  EXPECT_EQ(report.outcomes[0].status, JobStatus::kPoisoned);
  EXPECT_EQ(report.outcomes[0].error, ErrorClass::kInternal);
  EXPECT_EQ(report.outcomes[0].attempts, 2);
}

TEST(SvcExecutor, TruncatedAttemptsKeepBestResult) {
  // Attempt 1 truncates with cut 90; attempt 2 completes with cut 50.
  ExecutorConfig config;
  config.retry.max_attempts = 3;
  config.sleep_fn = [](double) {};
  std::atomic<int> attempt_no{0};
  auto runner = [&](const JobSpec&, const util::Deadline&) {
    const int attempt = attempt_no.fetch_add(1) + 1;
    if (attempt == 1) return JobResult{90, true};
    return JobResult{50, false};
  };
  BatchExecutor executor(runner, config);
  const BatchReport report = executor.run({simple_spec("t", 1)}, nullptr);
  ASSERT_EQ(report.outcomes.size(), 1u);
  EXPECT_EQ(report.outcomes[0].status, JobStatus::kOk);
  EXPECT_EQ(report.outcomes[0].cut, 50);
  EXPECT_FALSE(report.outcomes[0].truncated);
  EXPECT_EQ(report.outcomes[0].attempts, 2);
}

TEST(SvcExecutor, AlwaysTruncatedEndsTruncatedNotPoisoned) {
  ExecutorConfig config;
  config.retry.max_attempts = 2;
  config.sleep_fn = [](double) {};
  auto runner = [](const JobSpec&, const util::Deadline&) {
    return JobResult{70, true};
  };
  BatchExecutor executor(runner, config);
  const BatchReport report = executor.run({simple_spec("t", 1)}, nullptr);
  ASSERT_EQ(report.outcomes.size(), 1u);
  EXPECT_EQ(report.outcomes[0].status, JobStatus::kTruncated);
  EXPECT_TRUE(report.outcomes[0].truncated);
  EXPECT_EQ(report.outcomes[0].cut, 70);
  EXPECT_EQ(report.truncated, 1);
  EXPECT_EQ(report.exit_code(), 0);  // a truncated fleet still completed
}

TEST(SvcExecutor, RetryTruncatedFalseAcceptsFirstResult) {
  ExecutorConfig config;
  config.retry.retry_truncated = false;
  config.sleep_fn = [](double) {};
  std::atomic<int> calls{0};
  auto runner = [&](const JobSpec&, const util::Deadline&) {
    calls.fetch_add(1);
    return JobResult{70, true};
  };
  BatchExecutor executor(runner, config);
  const BatchReport report = executor.run({simple_spec("t", 1)}, nullptr);
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(report.outcomes[0].status, JobStatus::kTruncated);
  EXPECT_EQ(report.outcomes[0].attempts, 1);
}

TEST(SvcExecutor, BudgetSecondsAttachesADeadline) {
  std::vector<JobSpec> manifest = {simple_spec("budgeted", 1)};
  manifest[0].budget_seconds = 0.05;
  ExecutorConfig config;
  config.retry.max_attempts = 1;
  auto runner = [](const JobSpec&, const util::Deadline& deadline) {
    // A cooperative engine loop: unwinds when the budget expires.
    while (!deadline.expired()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return JobResult{5, true};
  };
  BatchExecutor executor(runner, config);
  const BatchReport report = executor.run(manifest, nullptr);
  EXPECT_EQ(report.outcomes[0].status, JobStatus::kTruncated);
}

TEST(SvcExecutor, HangWatchdogCancelsStuckAttempts) {
  ExecutorConfig config;
  config.hang_seconds = 0.05;
  config.retry.retry_truncated = false;
  config.sleep_fn = [](double) {};
  auto runner = [](const JobSpec&, const util::Deadline& deadline) {
    // Simulated hang: no internal budget, loops until the supervisor's
    // heartbeat watchdog flips the cancel flag.
    while (!deadline.expired()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return JobResult{1, true};
  };
  BatchExecutor executor(runner, config);
  const BatchReport report = executor.run({simple_spec("stuck", 1)}, nullptr);
  ASSERT_EQ(report.outcomes.size(), 1u);
  EXPECT_EQ(report.outcomes[0].status, JobStatus::kTruncated);
}

TEST(SvcExecutor, DrainStopsDispatchingButKeepsFinished) {
  std::atomic<bool> drain{false};
  ExecutorConfig config;
  config.workers = 1;
  config.drain = &drain;
  config.fault_hook = [&](const JobSpec& spec, int) {
    if (spec.id == "b") drain.store(true);  // raised mid-fleet
  };
  BatchExecutor executor(scripted_runner, config);
  const BatchReport report = executor.run(
      {simple_spec("a", 1), simple_spec("b", 2), simple_spec("c", 3)},
      nullptr);
  // a and b finish (b was already claimed when the flag flipped); c is
  // abandoned, and the report says the fleet is incomplete.
  EXPECT_EQ(report.ok, 2);
  EXPECT_EQ(report.abandoned, 1);
  EXPECT_TRUE(report.drained);
  EXPECT_FALSE(report.complete());
  EXPECT_EQ(report.exit_code(), util::kExitInternal);
}

// ---------------------------------------------------- crash and resume --

TEST(SvcExecutor, HaltSimulatesKillAndResumeCompletes) {
  TempDir dir;
  const std::string path = dir.file("journal.jsonl");
  std::vector<JobSpec> manifest;
  for (int j = 0; j < 6; ++j) {
    manifest.push_back(simple_spec("job" + std::to_string(j), 100 + j));
  }

  // Fleet 1 "crashes" after 2 checkpointed outcomes: in-flight results
  // are discarded exactly as a kill -9 between claim and commit would.
  {
    ExecutorConfig config;
    config.workers = 2;
    config.halt_after = 2;
    CheckpointJournal journal(path);
    BatchExecutor executor(scripted_runner, config);
    const BatchReport report = executor.run(manifest, &journal);
    EXPECT_EQ(report.ok, 2);
    EXPECT_EQ(report.abandoned, 4);
    EXPECT_FALSE(report.complete());
  }
  {
    CheckpointJournal journal(path);
    EXPECT_EQ(journal.load().size(), 2u);
  }

  // Fleet 2 resumes: journaled jobs are skipped, the rest run, and the
  // merged journal has exactly one outcome per manifest job.
  ExecutorConfig config;
  config.workers = 2;
  CheckpointJournal journal(path);
  BatchExecutor executor(scripted_runner, config);
  const BatchReport report = executor.run(manifest, &journal);
  EXPECT_EQ(report.resumed, 2);
  EXPECT_EQ(report.ok, 6);
  EXPECT_TRUE(report.complete());
  ASSERT_EQ(report.outcomes.size(), 6u);

  CheckpointJournal reread(path);
  const auto merged = reread.load();
  ASSERT_EQ(merged.size(), 6u);
  std::vector<std::string> ids;
  for (const auto& outcome : merged) ids.push_back(outcome.id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<std::string>{"job0", "job1", "job2", "job3",
                                           "job4", "job5"}));

  // Bit-identical to an uninterrupted run, modulo order and timing.
  BatchExecutor clean(scripted_runner, ExecutorConfig{});
  const BatchReport uninterrupted = clean.run(manifest, nullptr);
  EXPECT_EQ(canonical_journal(merged),
            canonical_journal(uninterrupted.outcomes));
}

TEST(SvcExecutor, ResumeSkipsJournaledJobsWithoutRerunningThem) {
  TempDir dir;
  const std::string path = dir.file("journal.jsonl");
  std::vector<JobSpec> manifest = {simple_spec("a", 1), simple_spec("b", 2)};
  std::atomic<int> runs{0};
  auto counting = [&](const JobSpec& spec, const util::Deadline& deadline) {
    runs.fetch_add(1);
    return scripted_runner(spec, deadline);
  };
  {
    CheckpointJournal journal(path);
    ExecutorConfig config;
    config.halt_after = 1;
    BatchExecutor executor(counting, config);
    executor.run(manifest, &journal);
  }
  EXPECT_EQ(runs.load(), 1);
  CheckpointJournal journal(path);
  BatchExecutor executor(counting, ExecutorConfig{});
  const BatchReport report = executor.run(manifest, &journal);
  EXPECT_EQ(runs.load(), 2);  // only the missing job ran
  EXPECT_EQ(report.resumed, 1);
  EXPECT_TRUE(report.complete());
}

TEST(SvcExecutor, JournaledOutcomeForUnknownJobIsIgnored) {
  TempDir dir;
  const std::string path = dir.file("journal.jsonl");
  {
    CheckpointJournal journal(path);
    JobOutcome stray;
    stray.id = "not-in-manifest";
    journal.append(stray);
  }
  CheckpointJournal journal(path);
  BatchExecutor executor(scripted_runner, ExecutorConfig{});
  const BatchReport report = executor.run({simple_spec("a", 1)}, &journal);
  EXPECT_EQ(report.resumed, 0);
  EXPECT_EQ(report.ok, 1);
  EXPECT_TRUE(report.complete());
}

// ------------------------------------------------- determinism guard ----

TEST(SvcDeterminism, CanonicalJournalIdenticalAcrossWorkerCounts) {
  // Real partitioning jobs (smoke circuits, both regimes) run with one
  // worker and with two; the canonical journals must be byte-identical.
  std::vector<JobSpec> manifest;
  const char* regimes[] = {"free", "good", "rand"};
  for (int j = 0; j < 6; ++j) {
    JobSpec spec;
    spec.id = "d" + std::to_string(j);
    spec.circuit = 1 + j % 2;
    spec.scale = "smoke";
    spec.regime = regimes[j % 3];
    spec.fixed_pct = spec.regime == std::string("free") ? 0.0 : 15.0;
    spec.starts = 1 + j % 2;
    spec.seed = 9000 + static_cast<std::uint64_t>(j);
    manifest.push_back(spec);
  }

  ExecutorConfig one;
  one.workers = 1;
  const BatchReport serial =
      BatchExecutor(run_partition_job, one).run(manifest, nullptr);

  ExecutorConfig two;
  two.workers = 2;
  const BatchReport parallel =
      BatchExecutor(run_partition_job, two).run(manifest, nullptr);

  ASSERT_TRUE(serial.complete());
  ASSERT_TRUE(parallel.complete());
  EXPECT_EQ(canonical_journal(serial.outcomes),
            canonical_journal(parallel.outcomes));
  for (const auto& outcome : serial.outcomes) {
    EXPECT_EQ(outcome.status, JobStatus::kOk) << outcome.id;
  }
}

}  // namespace
}  // namespace fixedpart::svc
