#include "ml/multilevel.hpp"

#include <gtest/gtest.h>

#include "gen/netlist_gen.hpp"
#include "hg/builder.hpp"
#include "part/initial.hpp"
#include "part/partition.hpp"
#include "util/errors.hpp"
#include "util/rng.hpp"

namespace fixedpart::ml {
namespace {

gen::GeneratedCircuit small_circuit(std::uint64_t seed = 7) {
  gen::CircuitSpec spec;
  spec.name = "test";
  spec.num_cells = 600;
  spec.num_nets = 700;
  spec.num_pads = 24;
  spec.num_macros = 1;
  spec.macro_area_pct = 2.0;
  spec.seed = seed;
  return gen::generate_circuit(spec);
}

TEST(Multilevel, ProducesFeasibleBipartition) {
  const auto circuit = small_circuit();
  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 2.0);
  const MultilevelPartitioner partitioner(circuit.graph, fixed, balance);
  util::Rng rng(1);
  const auto result = partitioner.run(rng, MultilevelConfig{});

  ASSERT_EQ(result.assignment.size(),
            static_cast<std::size_t>(circuit.graph.num_vertices()));
  EXPECT_GT(result.levels, 1);
  // Re-play the assignment and confirm the reported cut and balance.
  part::PartitionState state(circuit.graph, 2);
  for (hg::VertexId v = 0; v < circuit.graph.num_vertices(); ++v) {
    state.assign(v, result.assignment[v]);
  }
  EXPECT_EQ(state.cut(), result.cut);
  EXPECT_TRUE(balance.satisfied(state.part_weights()));
}

TEST(Multilevel, BeatsFlatRandomByALot) {
  const auto circuit = small_circuit();
  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 2.0);
  const MultilevelPartitioner partitioner(circuit.graph, fixed, balance);
  util::Rng rng(2);
  const auto result = partitioner.run(rng, MultilevelConfig{});

  part::PartitionState random_state(circuit.graph, 2);
  part::random_feasible_assignment(random_state, fixed, balance, rng);
  EXPECT_LT(result.cut, random_state.cut() / 2);
}

TEST(Multilevel, RespectsFixedVertices) {
  const auto circuit = small_circuit();
  hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  util::Rng pick(3);
  for (hg::VertexId v = 0; v < circuit.graph.num_vertices(); v += 5) {
    fixed.fix(v, static_cast<hg::PartitionId>(pick.next_below(2)));
  }
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 2.0);
  const MultilevelPartitioner partitioner(circuit.graph, fixed, balance);
  util::Rng rng(4);
  const auto result = partitioner.run(rng, MultilevelConfig{});
  for (hg::VertexId v = 0; v < circuit.graph.num_vertices(); ++v) {
    const hg::PartitionId p = fixed.fixed_part(v);
    if (p != hg::kNoPartition) {
      EXPECT_EQ(result.assignment[v], p);
    }
  }
}

TEST(Multilevel, MultistartNeverWorseThanItsOwnRuns) {
  const auto circuit = small_circuit();
  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 2.0);
  const MultilevelPartitioner partitioner(circuit.graph, fixed, balance);

  // best_of(4) with the same seed must equal the min over the same 4 runs.
  util::Rng rng_a(5);
  const auto best = partitioner.best_of(4, rng_a, MultilevelConfig{});
  util::Rng rng_b(5);
  Weight manual_best = std::numeric_limits<Weight>::max();
  for (int s = 0; s < 4; ++s) {
    manual_best =
        std::min(manual_best, partitioner.run(rng_b, MultilevelConfig{}).cut);
  }
  EXPECT_EQ(best.cut, manual_best);
}

TEST(Multilevel, DeterministicForSeed) {
  const auto circuit = small_circuit();
  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 2.0);
  const MultilevelPartitioner partitioner(circuit.graph, fixed, balance);
  util::Rng rng_a(6);
  util::Rng rng_b(6);
  const auto a = partitioner.run(rng_a, MultilevelConfig{});
  const auto b = partitioner.run(rng_b, MultilevelConfig{});
  EXPECT_EQ(a.cut, b.cut);
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(Multilevel, TinyInputSkipsCoarsening) {
  gen::CircuitSpec spec;
  spec.num_cells = 64;
  spec.num_nets = 80;
  spec.num_pads = 0;
  spec.num_macros = 0;
  spec.seed = 11;
  const auto circuit = gen::generate_circuit(spec);
  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 10.0);
  const MultilevelPartitioner partitioner(circuit.graph, fixed, balance);
  util::Rng rng(7);
  MultilevelConfig config;
  config.coarsest_size = 200;  // larger than the instance
  const auto result = partitioner.run(rng, config);
  EXPECT_EQ(result.levels, 1);
  ASSERT_EQ(result.assignment.size(),
            static_cast<std::size_t>(circuit.graph.num_vertices()));
}

TEST(Multilevel, MostlyFixedInstanceStillSolves) {
  const auto circuit = small_circuit(12);
  hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  util::Rng pick(8);
  // Fix 50% of vertices randomly (the paper's extreme regime).
  for (hg::VertexId v = 0; v < circuit.graph.num_vertices(); v += 2) {
    fixed.fix(v, static_cast<hg::PartitionId>(pick.next_below(2)));
  }
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 2.0);
  const MultilevelPartitioner partitioner(circuit.graph, fixed, balance);
  util::Rng rng(9);
  const auto result = partitioner.run(rng, MultilevelConfig{});
  part::PartitionState state(circuit.graph, 2);
  for (hg::VertexId v = 0; v < circuit.graph.num_vertices(); ++v) {
    state.assign(v, result.assignment[v]);
  }
  EXPECT_TRUE(balance.satisfied(state.part_weights()));
  part::check_respects_fixed(state, fixed);
}

TEST(Multilevel, VcycleNeverWorseThanPlainRun) {
  const auto circuit = small_circuit(21);
  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 2.0);
  const MultilevelPartitioner partitioner(circuit.graph, fixed, balance);
  for (const std::uint64_t seed : {31ULL, 32ULL, 33ULL}) {
    util::Rng rng_plain(seed);
    util::Rng rng_vcycle(seed);
    MultilevelConfig plain;
    MultilevelConfig with_vcycle;
    with_vcycle.vcycles = 2;
    const auto base = partitioner.run(rng_plain, plain);
    const auto refined = partitioner.run(rng_vcycle, with_vcycle);
    // Identical RNG stream up to the first V-cycle, and a V-cycle is
    // monotone (projection preserves the cut, FM only improves).
    EXPECT_LE(refined.cut, base.cut);
  }
}

TEST(Multilevel, VcycleRespectsFixedAndBalance) {
  const auto circuit = small_circuit(22);
  hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  util::Rng pick(23);
  for (hg::VertexId v = 0; v < circuit.graph.num_vertices(); v += 4) {
    fixed.fix(v, static_cast<hg::PartitionId>(pick.next_below(2)));
  }
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 2.0);
  const MultilevelPartitioner partitioner(circuit.graph, fixed, balance);
  util::Rng rng(24);
  MultilevelConfig config;
  config.vcycles = 1;
  const auto result = partitioner.run(rng, config);
  part::PartitionState state(circuit.graph, 2);
  for (hg::VertexId v = 0; v < circuit.graph.num_vertices(); ++v) {
    state.assign(v, result.assignment[v]);
  }
  EXPECT_EQ(state.cut(), result.cut);
  EXPECT_TRUE(balance.satisfied(state.part_weights()));
  part::check_respects_fixed(state, fixed);
}

TEST(Multilevel, ParallelMultistartDeterministicAcrossThreadCounts) {
  const auto circuit = small_circuit(25);
  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 2.0);
  const MultilevelPartitioner partitioner(circuit.graph, fixed, balance);
  const auto one = partitioner.best_of_parallel(6, 1, 42, MultilevelConfig{});
  const auto four = partitioner.best_of_parallel(6, 4, 42, MultilevelConfig{});
  const auto many =
      partitioner.best_of_parallel(6, 16, 42, MultilevelConfig{});
  EXPECT_EQ(one.cut, four.cut);
  EXPECT_EQ(one.cut, many.cut);
  EXPECT_EQ(one.assignment, four.assignment);
  EXPECT_EQ(one.assignment, many.assignment);
}

TEST(Multilevel, ParallelMultistartValidation) {
  const auto circuit = small_circuit(26);
  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 2.0);
  const MultilevelPartitioner partitioner(circuit.graph, fixed, balance);
  EXPECT_THROW(partitioner.best_of_parallel(0, 2, 1, MultilevelConfig{}),
               std::invalid_argument);
  EXPECT_THROW(partitioner.best_of_parallel(2, 0, 1, MultilevelConfig{}),
               std::invalid_argument);
}

TEST(Multilevel, ParallelMultistartPropagatesWorkerExceptions) {
  // Two weight-10 vertices pinned into part 0 overflow a 2% tolerance, so
  // with the strict pre-flight every worker start throws InfeasibleError.
  // The exception must propagate to the caller as an exception (not
  // std::terminate from an unjoined/throwing thread, not a hang).
  hg::HypergraphBuilder builder;
  builder.add_vertex(10);
  builder.add_vertex(10);
  builder.add_vertex(1);
  builder.add_vertex(1);
  builder.add_net(std::vector<hg::VertexId>{0, 2}, 1);
  builder.add_net(std::vector<hg::VertexId>{1, 3}, 1);
  const hg::Hypergraph graph = builder.build();
  hg::FixedAssignment fixed(graph.num_vertices(), 2);
  fixed.fix(0, 0);
  fixed.fix(1, 0);
  const auto balance = part::BalanceConstraint::relative(graph, 2, 2.0);
  const MultilevelPartitioner partitioner(graph, fixed, balance);
  MultilevelConfig strict;
  strict.preflight = true;
  EXPECT_THROW(partitioner.best_of_parallel(4, 2, 11, strict),
               util::InfeasibleError);
  EXPECT_THROW(partitioner.best_of_parallel(4, 1, 11, strict),
               util::InfeasibleError);
}

TEST(Multilevel, RejectsBadArguments) {
  const auto circuit = small_circuit(13);
  const hg::FixedAssignment fixed4(circuit.graph.num_vertices(), 4);
  const auto balance4 =
      part::BalanceConstraint::relative(circuit.graph, 4, 2.0);
  EXPECT_THROW(MultilevelPartitioner(circuit.graph, fixed4, balance4),
               std::invalid_argument);

  const hg::FixedAssignment fixed(circuit.graph.num_vertices(), 2);
  const auto balance =
      part::BalanceConstraint::relative(circuit.graph, 2, 2.0);
  const MultilevelPartitioner partitioner(circuit.graph, fixed, balance);
  util::Rng rng(10);
  EXPECT_THROW(partitioner.best_of(0, rng, MultilevelConfig{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace fixedpart::ml
