// Differential tests for boundary-driven FM: with the same RNG seed, a
// boundary-populated pass must replay the full-population trajectory
// exactly — same moves, same cuts, same pass count, same final assignment.
// This is the correctness contract that lets the hot path skip interior
// vertices (see docs/PERF.md for why the two modes coincide).

#include "part/fm.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hg/builder.hpp"
#include "part/initial.hpp"
#include "util/rng.hpp"

namespace fixedpart::part {
namespace {

hg::Hypergraph random_graph(util::Rng& rng, int n, int nets,
                            Weight max_area = 4, int zero_weight_nets = 0) {
  hg::HypergraphBuilder b;
  for (int i = 0; i < n; ++i) {
    b.add_vertex(1 + static_cast<Weight>(rng.next_below(
                         static_cast<std::uint64_t>(max_area))));
  }
  for (int e = 0; e < nets; ++e) {
    std::vector<hg::VertexId> pins;
    const int degree = 2 + static_cast<int>(rng.next_below(4));
    for (int d = 0; d < degree; ++d) {
      pins.push_back(static_cast<hg::VertexId>(
          rng.next_below(static_cast<std::uint64_t>(n))));
    }
    // Zero-weight nets stress the one asymmetry between the population
    // modes: they can put a vertex on the boundary without ever sending it
    // a gain delta, so boundary mode keeps it parked where full mode
    // tracks it live — at an identical (zero-contribution) key.
    b.add_net(pins, e < zero_weight_nets ? 0 : 1);
  }
  return b.build();
}

struct Outcome {
  FmResult result;
  std::vector<hg::PartitionId> assignment;
};

Outcome run_mode(const hg::Hypergraph& g, const hg::FixedAssignment& fixed,
                 const BalanceConstraint& balance, FmConfig config,
                 bool boundary, std::uint64_t seed) {
  config.boundary = boundary;
  FmBipartitioner fm(g, fixed, balance);
  PartitionState state(g, 2);
  util::Rng rng(seed);
  random_feasible_assignment(state, fixed, balance, rng);
  Outcome out;
  out.result = fm.refine(state, rng, config);
  out.assignment.assign(state.assignment().begin(), state.assignment().end());
  return out;
}

void expect_identical(const Outcome& boundary, const Outcome& full) {
  EXPECT_EQ(boundary.result.initial_cut, full.result.initial_cut);
  EXPECT_EQ(boundary.result.final_cut, full.result.final_cut);
  EXPECT_EQ(boundary.result.passes, full.result.passes);
  EXPECT_EQ(boundary.result.total_moves, full.result.total_moves);
  ASSERT_EQ(boundary.result.pass_records.size(),
            full.result.pass_records.size());
  for (std::size_t p = 0; p < full.result.pass_records.size(); ++p) {
    const PassRecord& b = boundary.result.pass_records[p];
    const PassRecord& f = full.result.pass_records[p];
    EXPECT_EQ(b.moves_performed, f.moves_performed) << "pass " << p;
    EXPECT_EQ(b.best_prefix, f.best_prefix) << "pass " << p;
    EXPECT_EQ(b.cut_before, f.cut_before) << "pass " << p;
    EXPECT_EQ(b.cut_best, f.cut_best) << "pass " << p;
    EXPECT_EQ(b.boundary_vertices, f.boundary_vertices) << "pass " << p;
  }
  EXPECT_EQ(boundary.assignment, full.assignment);
}

struct DiffParam {
  std::uint64_t seed;
  int vertices;
  int nets;
  int zero_weight_nets;
  double tolerance;
  SelectionPolicy policy;
  double fixed_fraction;
  double pass_cutoff;
  double stall_fraction;
};

class BoundaryDifferential : public ::testing::TestWithParam<DiffParam> {};

TEST_P(BoundaryDifferential, MatchesFullPopulationMoveForMove) {
  const auto param = GetParam();
  util::Rng gen(param.seed);
  const hg::Hypergraph g = random_graph(gen, param.vertices, param.nets, 4,
                                        param.zero_weight_nets);
  hg::FixedAssignment fixed(g.num_vertices(), 2);
  const auto fixed_count = static_cast<hg::VertexId>(
      param.fixed_fraction * param.vertices);
  for (hg::VertexId i = 0; i < fixed_count; ++i) {
    fixed.fix(i, static_cast<hg::PartitionId>(gen.next_below(2)));
  }
  const auto balance = BalanceConstraint::relative(g, 2, param.tolerance);

  FmConfig config;
  config.policy = param.policy;
  config.pass_cutoff = param.pass_cutoff;
  config.stall_fraction = param.stall_fraction;
  config.stall_min = 8;  // small enough to trigger on these instances

  const Outcome boundary =
      run_mode(g, fixed, balance, config, /*boundary=*/true, param.seed ^ 0xd1f);
  const Outcome full =
      run_mode(g, fixed, balance, config, /*boundary=*/false, param.seed ^ 0xd1f);
  expect_identical(boundary, full);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BoundaryDifferential,
    ::testing::Values(
        // policy x fixed-fraction spread, full passes
        DiffParam{301, 80, 160, 0, 10.0, SelectionPolicy::kLifo, 0.0, 1.0, 1.0},
        DiffParam{302, 80, 160, 0, 10.0, SelectionPolicy::kFifo, 0.0, 1.0, 1.0},
        DiffParam{303, 80, 160, 0, 10.0, SelectionPolicy::kClip, 0.0, 1.0, 1.0},
        DiffParam{304, 120, 260, 0, 5.0, SelectionPolicy::kLifo, 0.3, 1.0, 1.0},
        DiffParam{305, 120, 260, 0, 5.0, SelectionPolicy::kFifo, 0.3, 1.0, 1.0},
        DiffParam{306, 120, 260, 0, 5.0, SelectionPolicy::kClip, 0.3, 1.0, 1.0},
        // pass cutoff interacts with selection order
        DiffParam{307, 100, 220, 0, 5.0, SelectionPolicy::kLifo, 0.2, 0.25,
                  1.0},
        DiffParam{308, 100, 220, 0, 5.0, SelectionPolicy::kFifo, 0.2, 0.25,
                  1.0},
        // stall exit must fire at the same move in both modes
        DiffParam{309, 150, 320, 0, 5.0, SelectionPolicy::kLifo, 0.1, 1.0,
                  0.15},
        DiffParam{310, 150, 320, 0, 5.0, SelectionPolicy::kFifo, 0.1, 1.0,
                  0.15},
        // zero-weight nets: boundary membership without gain deltas
        DiffParam{311, 90, 200, 40, 10.0, SelectionPolicy::kLifo, 0.2, 1.0,
                  1.0},
        DiffParam{312, 90, 200, 40, 10.0, SelectionPolicy::kFifo, 0.2, 1.0,
                  1.0},
        // heavily fixed (the paper's regime): big stable interior
        DiffParam{313, 140, 300, 0, 2.0, SelectionPolicy::kLifo, 0.6, 1.0,
                  1.0},
        DiffParam{314, 140, 300, 0, 2.0, SelectionPolicy::kClip, 0.6, 1.0,
                  1.0}));

// The move-by-move self-check must also hold in boundary mode: live keys
// track true gains, and parked interior keys equal true gains throughout.
class BoundaryInvariant
    : public ::testing::TestWithParam<std::tuple<std::uint64_t,
                                                 SelectionPolicy>> {};

TEST_P(BoundaryInvariant, KeysTrackTrueGainsMoveByMove) {
  const auto [seed, policy] = GetParam();
  util::Rng gen(seed);
  const hg::Hypergraph g = random_graph(gen, 60, 140);
  hg::FixedAssignment fixed(g.num_vertices(), 2);
  for (hg::VertexId v = 0; v < 10; ++v) {
    fixed.fix(v, static_cast<hg::PartitionId>(gen.next_below(2)));
  }
  const auto balance = BalanceConstraint::relative(g, 2, 10.0);
  FmBipartitioner fm(g, fixed, balance);
  PartitionState state(g, 2);
  util::Rng rng(seed ^ 0x7e2);
  random_feasible_assignment(state, fixed, balance, rng);
  FmConfig config;
  config.policy = policy;
  config.boundary = true;
  config.check_invariants = true;
  EXPECT_NO_THROW(fm.refine(state, rng, config));
}

INSTANTIATE_TEST_SUITE_P(
    Policies, BoundaryInvariant,
    ::testing::Combine(::testing::Values(71, 72, 73),
                       ::testing::Values(SelectionPolicy::kLifo,
                                         SelectionPolicy::kFifo,
                                         SelectionPolicy::kClip)));

// A shared scratch must be a pure optimization: reusing one workspace
// across refiners on differently-sized graphs (the multilevel pattern)
// yields exactly the results of per-refiner workspaces.
TEST(FmScratch, ReuseAcrossGraphsMatchesFreshScratch) {
  util::Rng gen(401);
  const hg::Hypergraph big = random_graph(gen, 150, 320);
  const hg::Hypergraph small = random_graph(gen, 40, 90);
  FmScratch shared;

  auto run_with = [&](const hg::Hypergraph& g, FmScratch* scratch,
                      SelectionPolicy policy, std::uint64_t seed) {
    const hg::FixedAssignment fixed(g.num_vertices(), 2);
    const auto balance = BalanceConstraint::relative(g, 2, 5.0);
    FmBipartitioner fm(g, fixed, balance, scratch);
    PartitionState state(g, 2);
    util::Rng rng(seed);
    random_feasible_assignment(state, fixed, balance, rng);
    FmConfig config;
    config.policy = policy;
    fm.refine(state, rng, config);
    return std::vector<hg::PartitionId>(state.assignment().begin(),
                                        state.assignment().end());
  };

  // big -> small -> big again, alternating policies so key ranges and
  // populated buckets differ between uses of the shared workspace.
  EXPECT_EQ(run_with(big, &shared, SelectionPolicy::kClip, 11),
            run_with(big, nullptr, SelectionPolicy::kClip, 11));
  EXPECT_EQ(run_with(small, &shared, SelectionPolicy::kLifo, 12),
            run_with(small, nullptr, SelectionPolicy::kLifo, 12));
  EXPECT_EQ(run_with(big, &shared, SelectionPolicy::kFifo, 13),
            run_with(big, nullptr, SelectionPolicy::kFifo, 13));
}

TEST(FmStallExit, BoundsNonImprovingTail) {
  util::Rng gen(402);
  const hg::Hypergraph g = random_graph(gen, 200, 420);
  const hg::FixedAssignment fixed(g.num_vertices(), 2);
  const auto balance = BalanceConstraint::relative(g, 2, 5.0);
  FmBipartitioner fm(g, fixed, balance);
  PartitionState state(g, 2);
  util::Rng rng(403);
  random_feasible_assignment(state, fixed, balance, rng);

  FmConfig config;
  config.stall_fraction = 0.1;
  config.stall_min = 4;
  const auto result = fm.refine(state, rng, config);

  const std::int32_t limit = std::max<std::int32_t>(
      config.stall_min,
      static_cast<std::int32_t>(0.1 * static_cast<double>(fm.num_movable())));
  for (const auto& rec : result.pass_records) {
    // A pass runs at most `limit` moves past its best prefix before the
    // stall exit fires (unless it exhausted the movable set first).
    if (rec.moves_performed < rec.movable) {
      EXPECT_LE(rec.moves_performed - rec.best_prefix, limit);
    }
  }
  // Still a valid refinement: consistent and never worse.
  EXPECT_LE(result.final_cut, result.initial_cut);
  EXPECT_EQ(state.cut(), state.recompute_cut());
  EXPECT_TRUE(balance.satisfied(state.part_weights()));
}

TEST(FmStallExit, DisabledAtOneRunsFullPasses) {
  util::Rng gen(404);
  const hg::Hypergraph g = random_graph(gen, 60, 120);
  const hg::FixedAssignment fixed(g.num_vertices(), 2);
  const auto balance = BalanceConstraint::relative(g, 2, 10.0);

  auto run_with_stall = [&](double fraction) {
    FmBipartitioner fm(g, fixed, balance);
    PartitionState state(g, 2);
    util::Rng rng(405);
    random_feasible_assignment(state, fixed, balance, rng);
    FmConfig config;
    config.stall_fraction = fraction;
    fm.refine(state, rng, config);
    return std::vector<hg::PartitionId>(state.assignment().begin(),
                                        state.assignment().end());
  };
  EXPECT_EQ(run_with_stall(1.0), run_with_stall(2.0));
}

TEST(PassRecordBoundary, CountsMovableBoundaryVertices) {
  // Two 3-vertex chains sharing no nets, split so one chain is entirely on
  // side 0 and the other on side 1 except one crossing vertex: only the
  // pins of the single cut net are boundary.
  hg::HypergraphBuilder b;
  for (int i = 0; i < 6; ++i) b.add_vertex(1);
  b.add_net(std::vector<hg::VertexId>{0, 1});
  b.add_net(std::vector<hg::VertexId>{1, 2});
  b.add_net(std::vector<hg::VertexId>{3, 4});
  b.add_net(std::vector<hg::VertexId>{4, 5});
  const hg::Hypergraph g = b.build();
  const hg::FixedAssignment fixed(g.num_vertices(), 2);
  const auto balance = BalanceConstraint::relative(g, 2, 60.0);
  FmBipartitioner fm(g, fixed, balance);
  PartitionState state(g, 2);
  // Cut exactly net {1,2}: vertices 1 and 2 are boundary, rest interior.
  state.assign(0, 0);
  state.assign(1, 0);
  state.assign(2, 1);
  state.assign(3, 1);
  state.assign(4, 1);
  state.assign(5, 1);
  util::Rng rng(406);
  FmConfig config;
  config.max_passes = 1;
  const auto result = fm.refine(state, rng, config);
  ASSERT_EQ(result.pass_records.size(), 1u);
  EXPECT_EQ(result.pass_records[0].boundary_vertices, 2);
}

}  // namespace
}  // namespace fixedpart::part
