// Fault-injection sweep over every parser entry point (ISSUE 2 tentpole).
// Each well-formed seed input is corrupted deterministically — truncation,
// token mutation, overflow-scale numbers, line duplication/deletion,
// hand-crafted degenerate nets — and fed to the parser in both strict and
// lenient mode. The contract under test: parse succeeds, or fails with a
// util::InputError carrying a diagnostic. Never a crash, never a hang,
// never another exception type. Variants that still parse are driven
// through the full multilevel pipeline with invariant checking on, so a
// "successfully" mis-parsed graph cannot silently poison downstream code.
//
// This file builds into the separate fp_fault_tests binary (ctest label
// "fault") so the corruption sweep can be run — or excluded — on its own.

#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <string>

#include "fault_inject.hpp"
#include "hg/io_bookshelf.hpp"
#include "hg/io_hmetis.hpp"
#include "hg/io_netare.hpp"
#include "hg/io_solution.hpp"
#include "ml/multilevel.hpp"
#include "part/balance.hpp"
#include "util/errors.hpp"
#include "util/rng.hpp"

namespace fixedpart {
namespace {

using testing::expect_graceful;
using testing::mangle_line;
using testing::mutate_token;
using testing::overflow_number;
using testing::truncations;

// ---------------------------------------------------------------- seeds --

const char kHgrSeed[] =
    "% fault-injection seed\n"
    "4 6 11\n"
    "2 1 2\n"
    "3 1 3 4\n"
    "1 5 6\n"
    "4 2 6\n"
    "1\n"
    "1\n"
    "2\n"
    "1\n"
    "1\n"
    "3\n";

const char kFpbSeed[] =
    "FPB 1.0\n"
    "resources 1\n"
    "vertices 4\n"
    "a 2\n"
    "b 3\n"
    "c 0 pad\n"
    "d 2\n"
    "nets 2\n"
    "1 3 a b c\n"
    "2 2 c d\n"
    "partitions 2\n"
    "tolerance 10\n"
    "fixed 1\n"
    "c p0|p1\n";

const char kNetDSeed[] =
    "0\n"
    "6\n"
    "2\n"
    "4\n"
    "2\n"
    "a0 s I\n"
    "a1 l O\n"
    "p1 l B\n"
    "a2 s O\n"
    "p1 l I\n"
    "a0 l B\n";

const char kAreSeed[] =
    "a0 2\n"
    "a1 3\n"
    "a2 1\n"
    "p1 0\n";

const char kFixSeed[] =
    "0\n"
    "-1\n"
    "1\n"
    "-1\n"
    "0\n"
    "-1\n";

const char kSolSeed[] =
    "FPSOL 1.0\n"
    "vertices 6 parts 2 cut 7\n"
    "0\n"
    "0\n"
    "1\n"
    "1\n"
    "0\n"
    "1\n";

// ---------------------------------------------------------------- sweep --

using ParseFn = std::function<void(std::istream&, const hg::IoOptions&)>;

/// Applies the full corruption battery to `seed` and asserts the graceful
/// contract for every variant in both strict and lenient mode. Returns
/// the number of variants that still parsed (for sanity logging).
int sweep(const std::string& name, const std::string& seed,
          const ParseFn& parse, std::uint64_t rng_seed) {
  int parsed = 0;
  const auto attempt = [&](const std::string& text, const std::string& what) {
    for (const bool strict : {true, false}) {
      const hg::IoOptions options =
          strict ? hg::IoOptions{} : hg::IoOptions::lenient();
      const std::string label =
          name + "/" + what + (strict ? "/strict" : "/lenient");
      parsed += expect_graceful(
          text, [&](std::istream& in) { parse(in, options); }, label);
    }
  };

  // The seed itself must parse in both modes — otherwise the sweep is
  // corrupting garbage and proves nothing.
  {
    for (const bool strict : {true, false}) {
      std::istringstream in(seed);
      EXPECT_NO_THROW(
          parse(in, strict ? hg::IoOptions{} : hg::IoOptions::lenient()))
          << name << ": seed input must be well-formed";
    }
  }

  int variant = 0;
  for (const std::string& cut : truncations(seed)) {
    attempt(cut, "truncate#" + std::to_string(variant++));
  }
  util::Rng rng(rng_seed);
  for (int i = 0; i < 48; ++i) {
    attempt(mutate_token(seed, rng), "mutate#" + std::to_string(i));
  }
  for (int i = 0; i < 12; ++i) {
    attempt(overflow_number(seed, rng), "overflow#" + std::to_string(i));
  }
  for (int i = 0; i < 12; ++i) {
    attempt(mangle_line(seed, rng), "mangle#" + std::to_string(i));
  }
  return parsed;
}

TEST(FaultInject, HmetisSweep) {
  sweep("hgr", kHgrSeed,
        [](std::istream& in, const hg::IoOptions& options) {
          hg::read_hmetis(in, options, "fault.hgr");
        },
        0x1);
}

TEST(FaultInject, FpbSweep) {
  sweep("fpb", kFpbSeed,
        [](std::istream& in, const hg::IoOptions& options) {
          hg::read_fpb(in, options, "fault.fpb");
        },
        0x2);
}

TEST(FaultInject, NetDSweep) {
  // Corrupt the .netD side against an intact .are.
  sweep("netD", kNetDSeed,
        [](std::istream& in, const hg::IoOptions& options) {
          std::istringstream are(kAreSeed);
          hg::read_netd(in, are, options, "fault.netD", "fault.are");
        },
        0x3);
}

TEST(FaultInject, AreSweep) {
  // Corrupt the .are side against an intact .netD.
  sweep("are", kAreSeed,
        [](std::istream& in, const hg::IoOptions& options) {
          std::istringstream net(kNetDSeed);
          hg::read_netd(net, in, options, "fault.netD", "fault.are");
        },
        0x4);
}

TEST(FaultInject, FixSweep) {
  sweep("fix", kFixSeed,
        [](std::istream& in, const hg::IoOptions& options) {
          hg::read_fix(in, 6, 2, options, "fault.fix");
        },
        0x5);
}

TEST(FaultInject, SolutionSweep) {
  sweep("fpsol", kSolSeed,
        [](std::istream& in, const hg::IoOptions& options) {
          hg::read_solution(in, options, "fault.fpsol");
        },
        0x6);
}

// ------------------------------------------- parse-through-the-pipeline --

// A corrupted .fpb that still parses must not poison the solver: run every
// surviving mutation through the full multilevel pipeline with invariant
// checking enabled. check_invariants() recomputes all incremental
// bookkeeping from scratch after every FM pass, so a structurally broken
// graph or partition state trips a std::logic_error here instead of a
// wrong answer downstream.
TEST(FaultInject, SurvivingFpbVariantsPartitionCleanly) {
  util::Rng corrupt_rng(0xf00d);
  util::Rng solve_rng(0x5eed);
  int survivors = 0;
  for (int i = 0; i < 64; ++i) {
    const std::string text = mutate_token(kFpbSeed, corrupt_rng);
    hg::BenchmarkInstance instance;
    try {
      std::istringstream in(text);
      instance = hg::read_fpb(in, hg::IoOptions::lenient(), "fault.fpb");
    } catch (const util::InputError&) {
      continue;  // rejected with a diagnostic: contract satisfied
    }
    // A mutation may legitimately change the partition count; the
    // multilevel engine is a bisection engine, so only drive 2-part
    // instances through it.
    if (instance.num_parts != 2) continue;
    ++survivors;
    const auto balance = part::BalanceConstraint::relative(
        instance.graph, instance.num_parts, 30.0);
    ml::MultilevelConfig config;
    config.refine.check_invariants = true;
    const ml::MultilevelPartitioner partitioner(instance.graph,
                                                instance.fixed, balance);
    const ml::MultilevelResult result = partitioner.run(solve_rng, config);
    ASSERT_EQ(result.assignment.size(), instance.graph.num_vertices());
    for (hg::VertexId v = 0; v < instance.graph.num_vertices(); ++v) {
      ASSERT_LT(result.assignment[v], instance.num_parts);
    }
  }
  // With a 64-variant battery at least the benign mutations (comment bytes,
  // weight digit swaps) must survive; zero survivors means the harness is
  // not exercising the pipeline at all.
  EXPECT_GT(survivors, 0);
}

// --------------------------------------------------- degenerate fixtures --

TEST(FaultInject, DuplicatePinRejectedStrictMergedLenient) {
  const std::string text = "1 3\n1 2 2 3\n";
  {
    std::istringstream in(text);
    EXPECT_THROW(hg::read_hmetis(in, hg::IoOptions{}), util::InputError);
  }
  std::istringstream in(text);
  const hg::Hypergraph g = hg::read_hmetis(in, hg::IoOptions::lenient());
  ASSERT_EQ(g.num_nets(), 1);
  EXPECT_EQ(g.pins(0).size(), 3u);  // duplicate pin 2 dropped
}

TEST(FaultInject, OverflowScaleWeightRejectedBothModes) {
  const std::string text =
      "1 2 11\n"
      "99999999999999999999999999 1 2\n"
      "1\n"
      "1\n";
  for (const bool strict : {true, false}) {
    std::istringstream in(text);
    EXPECT_THROW(hg::read_hmetis(in, strict ? hg::IoOptions{}
                                            : hg::IoOptions::lenient()),
                 util::InputError)
        << (strict ? "strict" : "lenient");
  }
}

TEST(FaultInject, PinIndexOutOfRangeReportsLineContext) {
  const std::string text = "1 2\n1 7\n";
  std::istringstream in(text);
  try {
    hg::read_hmetis(in, hg::IoOptions{}, "ctx.hgr");
    FAIL() << "out-of-range pin accepted";
  } catch (const util::InputError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("ctx.hgr"), std::string::npos) << what;
    EXPECT_NE(what.find("2"), std::string::npos) << what;  // line number
  }
}

TEST(FaultInject, EmptyNetLine) {
  // A declared net with no pins: must be a diagnostic or a consistent
  // zero/one-degree net — not a crash.
  const std::string text = "2 3\n1 2\n\n";
  for (const bool strict : {true, false}) {
    expect_graceful(
        text,
        [&](std::istream& in) {
          hg::read_hmetis(in, strict ? hg::IoOptions{}
                                     : hg::IoOptions::lenient());
        },
        std::string("empty-net/") + (strict ? "strict" : "lenient"));
  }
}

TEST(FaultInject, NegativeCountsRejected) {
  for (const std::string text :
       {std::string("-1 3\n"), std::string("1 -3\n"),
        std::string("2 2 10\n1 2\n1 2\n-5\n-5\n")}) {
    std::istringstream in(text);
    EXPECT_THROW(hg::read_hmetis(in, hg::IoOptions::lenient()),
                 util::InputError)
        << text;
  }
}

TEST(FaultInject, FpbDegreeMismatchStrictVsLenient) {
  // Net declares degree 3 but lists 2 pins.
  const std::string text =
      "FPB 1.0\n"
      "resources 1\n"
      "vertices 2\n"
      "a 1\n"
      "b 1\n"
      "nets 1\n"
      "1 3 a b\n"
      "partitions 2\n"
      "tolerance 10\n"
      "fixed 0\n";
  {
    std::istringstream in(text);
    EXPECT_THROW(hg::read_fpb(in, hg::IoOptions{}), util::InputError);
  }
  std::istringstream in(text);
  expect_graceful(
      text,
      [](std::istream& s) { hg::read_fpb(s, hg::IoOptions::lenient()); },
      "fpb-degree/lenient");
}

TEST(FaultInject, SolutionCutMismatchRejectedByCheckedReader) {
  std::istringstream hgr(kHgrSeed);
  const hg::Hypergraph graph = hg::read_hmetis(hgr);
  // kSolSeed records cut 7; recompute what the assignment actually cuts
  // and corrupt the header so the recorded value is wrong.
  std::string wrong = kSolSeed;
  const std::string::size_type at = wrong.find("cut 7");
  ASSERT_NE(at, std::string::npos);
  wrong.replace(at, 5, "cut 9999");
  std::istringstream in(wrong);
  EXPECT_THROW(hg::read_solution_checked(in, graph), util::InputError);
}

TEST(FaultInject, MissingFileReportsPath) {
  try {
    hg::read_hmetis_file("/nonexistent/fault.hgr");
    FAIL() << "missing file accepted";
  } catch (const util::InputError& error) {
    EXPECT_NE(std::string(error.what()).find("/nonexistent/fault.hgr"),
              std::string::npos)
        << error.what();
  }
}

}  // namespace
}  // namespace fixedpart
