// Cross-validation tests: the heuristics against exhaustive enumeration on
// tiny instances, and the three I/O formats against each other.

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <vector>

#include "hg/builder.hpp"
#include "hg/io_bookshelf.hpp"
#include "hg/io_hmetis.hpp"
#include "hg/io_netare.hpp"
#include "ml/multilevel.hpp"
#include "part/initial.hpp"
#include "part/partition.hpp"
#include "util/rng.hpp"

namespace fixedpart {
namespace {

hg::Hypergraph random_graph(util::Rng& rng, int n, int nets,
                            bool with_pads = false) {
  hg::HypergraphBuilder b;
  for (int i = 0; i < n; ++i) {
    const bool pad = with_pads && i >= n - 2;
    b.add_vertex(pad ? 0 : 1 + static_cast<hg::Weight>(rng.next_below(3)),
                 pad);
  }
  for (int e = 0; e < nets; ++e) {
    std::vector<hg::VertexId> pins;
    const int degree = 2 + static_cast<int>(rng.next_below(3));
    for (int d = 0; d < degree; ++d) {
      pins.push_back(static_cast<hg::VertexId>(
          rng.next_below(static_cast<std::uint64_t>(n))));
    }
    // Unit net weights: the legacy netD format cannot express weighted
    // nets, and the cross-format comparison must be exact.
    b.add_net(pins);
  }
  return b.build();
}

/// Exhaustive optimal bipartition cut under the balance constraint and
/// fixed assignment (2^movable enumeration; keep instances tiny).
hg::Weight brute_force_optimum(const hg::Hypergraph& g,
                               const hg::FixedAssignment& fixed,
                               const part::BalanceConstraint& balance) {
  std::vector<hg::VertexId> movable;
  for (hg::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (!fixed.is_fixed(v)) movable.push_back(v);
  }
  hg::Weight best = std::numeric_limits<hg::Weight>::max();
  const std::uint64_t combos = std::uint64_t{1} << movable.size();
  for (std::uint64_t mask = 0; mask < combos; ++mask) {
    part::PartitionState state(g, 2);
    for (hg::VertexId v = 0; v < g.num_vertices(); ++v) {
      const hg::PartitionId p = fixed.fixed_part(v);
      if (p != hg::kNoPartition) state.assign(v, p);
    }
    for (std::size_t i = 0; i < movable.size(); ++i) {
      state.assign(movable[i],
                   static_cast<hg::PartitionId>((mask >> i) & 1U));
    }
    if (!balance.satisfied(state.part_weights())) continue;
    best = std::min(best, state.cut());
  }
  return best;
}

class BruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BruteForce, MultilevelMultistartMatchesOptimum) {
  util::Rng gen(GetParam());
  const hg::Hypergraph g = random_graph(gen, 12, 20);
  hg::FixedAssignment fixed(g.num_vertices(), 2);
  fixed.fix(0, 0);
  fixed.fix(1, 1);
  const auto balance = part::BalanceConstraint::relative(g, 2, 30.0);
  const hg::Weight optimum = brute_force_optimum(g, fixed, balance);
  ASSERT_NE(optimum, std::numeric_limits<hg::Weight>::max())
      << "instance must be feasible";

  const ml::MultilevelPartitioner partitioner(g, fixed, balance);
  util::Rng rng(GetParam() ^ 0xbf);
  ml::MultilevelConfig config;
  config.coarsest_size = 32;  // tiny graph: effectively flat multistart
  const auto result = partitioner.best_of(30, rng, config);
  // The heuristic can never beat the optimum; on 12-vertex instances with
  // 30 starts it reliably attains it.
  EXPECT_GE(result.cut, optimum);
  EXPECT_EQ(result.cut, optimum);
}

INSTANTIATE_TEST_SUITE_P(TinyInstances, BruteForce,
                         ::testing::Values(201, 202, 203, 204, 205, 206, 207,
                                           208));

class FormatRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FormatRoundTrip, AllFormatsPreserveCutStructure) {
  util::Rng gen(GetParam());
  const hg::Hypergraph g = random_graph(gen, 30, 50, /*with_pads=*/true);

  // Reference random assignment; its cut must survive every format.
  // Formats reorder/rename vertices but all preserve identity ordering
  // except netD (cells-first); track the permutation by construction.
  std::vector<hg::PartitionId> sides(
      static_cast<std::size_t>(g.num_vertices()));
  for (auto& side : sides) {
    side = static_cast<hg::PartitionId>(gen.next_below(2));
  }
  auto cut_under = [&](const hg::Hypergraph& graph,
                       const std::vector<hg::PartitionId>& assignment) {
    part::PartitionState state(graph, 2);
    for (hg::VertexId v = 0; v < graph.num_vertices(); ++v) {
      state.assign(v, assignment[v]);
    }
    return state.cut();
  };
  const hg::Weight reference_cut = cut_under(g, sides);

  {  // hMETIS: identity vertex order.
    std::ostringstream out;
    hg::write_hmetis(out, g);
    std::istringstream in(out.str());
    const hg::Hypergraph g2 = hg::read_hmetis(in);
    EXPECT_EQ(cut_under(g2, sides), reference_cut);
  }
  {  // fpb: identity vertex order via names.
    hg::BenchmarkInstance instance;
    instance.graph = g;
    instance.fixed = hg::FixedAssignment(g.num_vertices(), 2);
    instance.names = hg::default_names(g.num_vertices());
    std::ostringstream out;
    hg::write_fpb(out, instance);
    std::istringstream in(out.str());
    const hg::BenchmarkInstance got = hg::read_fpb(in);
    EXPECT_EQ(cut_under(got.graph, sides), reference_cut);
    EXPECT_EQ(got.graph.num_pads(), g.num_pads());
  }
  {  // netD: cells first, then pads — permute the assignment accordingly.
    std::ostringstream net_out;
    std::ostringstream are_out;
    hg::write_netd(net_out, are_out, g);
    std::istringstream net_in(net_out.str());
    std::istringstream are_in(are_out.str());
    const hg::NetDInstance inst = hg::read_netd(net_in, are_in);
    std::vector<hg::PartitionId> permuted(
        static_cast<std::size_t>(g.num_vertices()));
    hg::VertexId cell = 0;
    hg::VertexId pad = 0;
    const hg::VertexId num_cells = g.num_vertices() - g.num_pads();
    for (hg::VertexId v = 0; v < g.num_vertices(); ++v) {
      if (g.is_pad(v)) {
        permuted[num_cells + pad++] = sides[v];
      } else {
        permuted[cell++] = sides[v];
      }
    }
    EXPECT_EQ(cut_under(inst.graph, permuted), reference_cut);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, FormatRoundTrip,
                         ::testing::Values(301, 302, 303, 304, 305));

}  // namespace
}  // namespace fixedpart
