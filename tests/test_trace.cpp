// Per-job distributed tracing (ctest -L trace; docs/OBSERVABILITY.md
// "Traces"): the trace-context stack, the bounded per-job SpanBuffer and
// its drop accounting, the interned/owned-name safety of ScopedSpan, the
// 'T' span-frame wire codec under a seeded corruption battery, and the
// always-on flight recorder (concurrent shards, current_phase, dumps).
// The concurrency tests here are part of the TSan matrix in
// scripts/check.sh.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fault_inject.hpp"
#include "obs/flight.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "obs/trace_wire.hpp"
#include "util/rng.hpp"

namespace fixedpart {
namespace {

namespace fs = std::filesystem;

obs::TraceEvent make_event(const char* name, std::int64_t start_ns,
                           std::int64_t dur_ns) {
  obs::TraceEvent event;
  event.name = name;
  event.start_ns = start_ns;
  event.dur_ns = dur_ns;
  event.tid = 1;
  return event;
}

// ------------------------------------------------- unconditional helpers --
// trace_id_for / trace_events_to_json / phase_breakdown are available (and
// meaningful) even under FIXEDPART_OBS=OFF.

TEST(TraceId, DeterministicAndDistinct) {
  const std::uint64_t a = obs::trace_id_for("job-a");
  EXPECT_EQ(a, obs::trace_id_for("job-a"));
  EXPECT_NE(a, obs::trace_id_for("job-b"));
  EXPECT_NE(a, 0u);
}

TEST(TraceJson, RendersEventsWithPidAndArgs) {
  obs::TraceEvent event = make_event("phase.one", 1500, 2500);
  event.pid = 4242;
  event.args[0] = obs::TraceArg{"level", true, 3, 0.0};
  event.args[1] = obs::TraceArg{"ratio", false, 0, 0.5};
  event.num_args = 2;
  const std::string json = obs::trace_events_to_json({event});
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"phase.one\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 4242"), std::string::npos);
  EXPECT_NE(json.find("\"level\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  // pid 0 renders as the conventional local pid 1.
  const std::string local =
      obs::trace_events_to_json({make_event("x", 0, 1)});
  EXPECT_NE(local.find("\"pid\": 1"), std::string::npos);
}

TEST(TraceJson, EmptyListIsValidSkeleton) {
  const std::string json = obs::trace_events_to_json({});
  EXPECT_NE(json.find("\"traceEvents\": []"), std::string::npos);
}

TEST(PhaseBreakdown, SumsOnlyMultilevelPhaseSpans) {
  std::vector<obs::TraceEvent> events;
  events.push_back(make_event("ml.coarsen_level", 0, 1'000'000'000));
  events.push_back(make_event("ml.coarsen_level", 0, 500'000'000));
  events.push_back(make_event("ml.initial", 0, 250'000'000));
  events.push_back(make_event("ml.refine_level", 0, 2'000'000'000));
  events.push_back(make_event("ml.project", 0, 9'000'000'000));
  events.push_back(make_event("svc.attempt", 0, 9'000'000'000));
  const obs::PhaseBreakdown breakdown = obs::phase_breakdown(events);
  EXPECT_NEAR(breakdown.coarsen_seconds, 1.5, 1e-9);
  EXPECT_NEAR(breakdown.initial_seconds, 0.25, 1e-9);
  EXPECT_NEAR(breakdown.refine_seconds, 2.0, 1e-9);
}

#if FIXEDPART_OBS_ENABLED

// ----------------------------------------------------- context + buffer --

TEST(TraceContext, StackNestsAndRoutesSpans) {
  ASSERT_FALSE(obs::ScopedTraceContext::current().active());
  obs::SpanBuffer outer_buffer;
  obs::SpanBuffer inner_buffer;
  {
    obs::ScopedTraceContext outer(obs::trace_id_for("outer"), &outer_buffer);
    { obs::ScopedSpan span("span.outer"); }
    {
      obs::ScopedTraceContext inner(obs::trace_id_for("inner"),
                                    &inner_buffer);
      EXPECT_EQ(obs::ScopedTraceContext::current().trace_id,
                obs::trace_id_for("inner"));
      { obs::ScopedSpan span("span.inner"); }
    }
    // Inner scope popped: spans route to the outer buffer again.
    { obs::ScopedSpan span("span.outer2"); }
  }
  EXPECT_FALSE(obs::ScopedTraceContext::current().active());
  ASSERT_EQ(outer_buffer.size(), 2u);
  ASSERT_EQ(inner_buffer.size(), 1u);
  const auto outer_events = outer_buffer.events();
  EXPECT_STREQ(outer_events[0].name, "span.outer");
  EXPECT_STREQ(outer_events[1].name, "span.outer2");
  EXPECT_EQ(outer_events[0].trace_id, obs::trace_id_for("outer"));
  EXPECT_EQ(inner_buffer.events()[0].trace_id, obs::trace_id_for("inner"));
}

TEST(TraceContext, SpansOutsideAnyContextAreSafe) {
  // No context, no armed tracer: the span still runs (flight recorder
  // only) and must not crash or leak.
  obs::ScopedSpan span("orphan.span");
  span.arg("k", std::int64_t{1});
}

TEST(SpanBuffer, BoundedWithDropAccounting) {
  const std::int64_t dropped_before =
      obs::Registry::global().scrape().counter("obs.trace.dropped");
  obs::SpanBuffer buffer(4);
  for (int i = 0; i < 10; ++i) buffer.record(make_event("e", i, 1));
  EXPECT_EQ(buffer.size(), 4u);
  EXPECT_EQ(buffer.dropped(), 6u);
  buffer.add_remote_dropped(5);
  EXPECT_EQ(buffer.dropped(), 11u);
  const std::int64_t dropped_after =
      obs::Registry::global().scrape().counter("obs.trace.dropped");
  EXPECT_GE(dropped_after - dropped_before, 11);
}

TEST(SpanBuffer, DrainMovesEventsOut) {
  obs::SpanBuffer buffer;
  buffer.record(make_event("a", 0, 1));
  buffer.record(make_event("b", 1, 1));
  const auto drained = buffer.drain();
  EXPECT_EQ(drained.size(), 2u);
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_TRUE(buffer.events().empty());
}

// The TSan certification for the per-job merge: 8 writer threads (the
// worst realistic case — engine threads plus the pool attendant merging a
// 'T' batch) record into one buffer while a reader snapshots it.
TEST(SpanBuffer, ConcurrentWritersAndReaderAreExact) {
  constexpr int kWriters = 8;
  constexpr int kPerWriter = 2000;
  obs::SpanBuffer buffer(kWriters * kPerWriter);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto snapshot = buffer.events();
      ASSERT_LE(snapshot.size(), static_cast<std::size_t>(kWriters) *
                                     kPerWriter);
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&buffer, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        buffer.record(make_event("w", w * kPerWriter + i, 1));
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(buffer.size(), static_cast<std::size_t>(kWriters) * kPerWriter);
  EXPECT_EQ(buffer.dropped(), 0u);
}

// Regression for the dangling-name hazard: a span named by a temporary
// std::string must stay renderable after the string is destroyed, because
// the name is interned into the process-lifetime pool.
TEST(ScopedSpan, DynamicNameSurvivesTheString) {
  obs::SpanBuffer buffer;
  obs::ScopedTraceContext context(obs::trace_id_for("owned"), &buffer);
  {
    std::string name = "dyn.";
    name += std::to_string(12345);
    obs::ScopedSpan span(name);
    name.assign(name.size(), 'X');  // clobber before the span closes
  }
  ASSERT_EQ(buffer.size(), 1u);
  const auto events = buffer.events();
  EXPECT_STREQ(events[0].name, "dyn.12345");
  const std::string json = obs::trace_events_to_json(events);
  EXPECT_NE(json.find("dyn.12345"), std::string::npos);
}

TEST(InternPool, SamePointerForSameName) {
  const char* a = obs::intern_name("intern.same");
  const char* b = obs::intern_name("intern.same");
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "intern.same");
}

// ------------------------------------------------------------ wire codec --

TEST(TraceWire, RoundTripPreservesSpans) {
  std::vector<obs::TraceEvent> batch;
  obs::TraceEvent weird = make_event(
      obs::intern_name("name with\ttab and\nnewline and \\slash"), 1000, 50);
  weird.args[0] = obs::TraceArg{"moves", true, 77, 0.0};
  weird.args[1] = obs::TraceArg{"ratio", false, 0, 0.25};
  weird.num_args = 2;
  weird.tid = 3;
  batch.push_back(weird);
  batch.push_back(make_event("plain", 2000, 10));

  const obs::SpanBatchHeader header_in{123456789, 42};
  const std::string payload = obs::encode_span_batch(header_in, batch);

  obs::SpanBatchHeader header_out;
  std::vector<obs::TraceEvent> decoded;
  std::size_t malformed = 0;
  ASSERT_TRUE(
      obs::decode_span_batch(payload, &header_out, &decoded, &malformed));
  EXPECT_EQ(header_out.worker_now_ns, 123456789);
  EXPECT_EQ(header_out.dropped, 42u);
  EXPECT_EQ(malformed, 0u);
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_STREQ(decoded[0].name, "name with\ttab and\nnewline and \\slash");
  EXPECT_EQ(decoded[0].start_ns, 1000);
  EXPECT_EQ(decoded[0].dur_ns, 50);
  EXPECT_EQ(decoded[0].tid, 3u);
  ASSERT_EQ(decoded[0].num_args, 2u);
  EXPECT_STREQ(decoded[0].args[0].key, "moves");
  EXPECT_EQ(decoded[0].args[0].int_value, 77);
  EXPECT_FALSE(decoded[0].args[1].is_int);
  EXPECT_DOUBLE_EQ(decoded[0].args[1].double_value, 0.25);
  EXPECT_STREQ(decoded[1].name, "plain");
}

TEST(TraceWire, MalformedLinesAreSkippedAndCounted) {
  const std::string payload =
      "spans v1 now=10 dropped=0\n"
      "good\t1\t2\t3\n"
      "no-tabs-at-all\n"
      "badnum\tzzz\t2\t3\n"
      "\t1\t2\t3\n"
      "good2\t4\t5\t6\tk=i9\n";
  obs::SpanBatchHeader header;
  std::vector<obs::TraceEvent> decoded;
  std::size_t malformed = 0;
  ASSERT_TRUE(obs::decode_span_batch(payload, &header, &decoded, &malformed));
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_STREQ(decoded[0].name, "good");
  EXPECT_STREQ(decoded[1].name, "good2");
  EXPECT_EQ(malformed, 3u);
}

TEST(TraceWire, BadHeaderRejectsWholePayload) {
  obs::SpanBatchHeader header;
  std::vector<obs::TraceEvent> decoded;
  std::size_t malformed = 0;
  EXPECT_FALSE(
      obs::decode_span_batch("junk\ngood\t1\t2\t3\n", &header, &decoded,
                             &malformed));
  EXPECT_FALSE(obs::decode_span_batch("", &header, &decoded, &malformed));
  EXPECT_TRUE(decoded.empty());
}

// The untrusted-input boundary under the seeded corruption battery: no
// variant may throw, exceed the caps, or hand back an unbounded name.
TEST(TraceWire, FuzzedPayloadsNeverThrowAndRespectCaps) {
  std::vector<obs::TraceEvent> batch;
  for (int i = 0; i < 32; ++i) {
    obs::TraceEvent event = make_event("fuzz.base", i * 100, 10);
    event.args[0] = obs::TraceArg{"i", true, i, 0.0};
    event.num_args = 1;
    batch.push_back(event);
  }
  const std::string payload =
      obs::encode_span_batch({55555, 1}, batch);
  util::Rng rng(0xfeedbeef);
  const std::vector<std::string> variants =
      testing::span_batch_faults(payload, rng);
  ASSERT_GT(variants.size(), 50u);
  for (std::size_t v = 0; v < variants.size(); ++v) {
    obs::SpanBatchHeader header;
    std::vector<obs::TraceEvent> decoded;
    std::size_t malformed = 0;
    EXPECT_NO_THROW(obs::decode_span_batch(variants[v], &header, &decoded,
                                           &malformed))
        << "variant " << v;
    EXPECT_LE(decoded.size(), obs::kMaxSpansPerBatch) << "variant " << v;
    for (const obs::TraceEvent& event : decoded) {
      ASSERT_NE(event.name, nullptr);
      EXPECT_LE(std::strlen(event.name), obs::kMaxWireNameBytes);
    }
  }
}

TEST(TraceWire, OversizedBatchIsTruncatedAtTheCap) {
  // A hostile worker can claim any number of lines; decode must stop at
  // kMaxSpansPerBatch. Build the payload by hand to keep it cheap.
  std::string payload = "spans v1 now=0 dropped=0\n";
  const std::string line = "s\t1\t2\t3\n";
  payload.reserve(payload.size() +
                  line.size() * (obs::kMaxSpansPerBatch + 100));
  for (std::size_t i = 0; i < obs::kMaxSpansPerBatch + 100; ++i) {
    payload += line;
  }
  obs::SpanBatchHeader header;
  std::vector<obs::TraceEvent> decoded;
  std::size_t malformed = 0;
  ASSERT_TRUE(obs::decode_span_batch(payload, &header, &decoded, &malformed));
  EXPECT_EQ(decoded.size(), obs::kMaxSpansPerBatch);
}

// -------------------------------------------------------- flight recorder --

TEST(FlightRecorder, RecordsAndRendersConcurrently) {
  auto& recorder = obs::FlightRecorder::global();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;  // < kShardEntries: nothing evicted
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.record_span("flight.span", 0xabcu + t, i * 10, 5);
        recorder.record_event("info", "test",
                              "flight message " + std::to_string(i));
      }
    });
  }
  std::thread reader([&recorder] {
    for (int i = 0; i < 50; ++i) {
      const std::string json = recorder.to_json();
      ASSERT_NE(json.find("\"entries\""), std::string::npos);
    }
  });
  for (std::thread& t : threads) t.join();
  reader.join();
  const std::string json = recorder.to_json();
  EXPECT_NE(json.find("flight.span"), std::string::npos);
  EXPECT_NE(json.find("\"recorded\""), std::string::npos);
}

TEST(FlightRecorder, CurrentPhaseTracksOpenSpans) {
  const std::uint64_t trace_id = obs::trace_id_for("phase-job");
  obs::SpanBuffer buffer;
  obs::ScopedTraceContext context(trace_id, &buffer);
  {
    obs::ScopedSpan outer("phase.outer");
    const obs::FlightPhase at_outer =
        obs::FlightRecorder::global().current_phase(trace_id);
    ASSERT_TRUE(at_outer.found);
    EXPECT_EQ(at_outer.name, "phase.outer");
    {
      obs::ScopedSpan inner("phase.inner");
      const obs::FlightPhase at_inner =
          obs::FlightRecorder::global().current_phase(trace_id);
      ASSERT_TRUE(at_inner.found);
      // Deepest open span wins.
      EXPECT_EQ(at_inner.name, "phase.inner");
      EXPECT_GE(at_inner.seconds, 0.0);
    }
    const obs::FlightPhase back_out =
        obs::FlightRecorder::global().current_phase(trace_id);
    ASSERT_TRUE(back_out.found);
    EXPECT_EQ(back_out.name, "phase.outer");
  }
  EXPECT_FALSE(
      obs::FlightRecorder::global().current_phase(trace_id).found);
}

TEST(FlightRecorder, DumpWritesWellFormedFile) {
  const fs::path dir =
      fs::temp_directory_path() / "fp_trace_test_flight_dump";
  fs::remove_all(dir);
  obs::FlightRecorder::global().record_event("warn", "test",
                                             "pre-dump marker");
  const std::string path = obs::FlightRecorder::global().dump(
      dir.string(), "crash", "job-xyz", "ml.refine_level");
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path.find("crash-job-xyz"), std::string::npos);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  const std::string text = content.str();
  EXPECT_NE(text.find("\"reason\": \"crash\""), std::string::npos);
  EXPECT_NE(text.find("\"job\": \"job-xyz\""), std::string::npos);
  EXPECT_NE(text.find("\"phase\": \"ml.refine_level\""), std::string::npos);
  EXPECT_NE(text.find("\"entries\""), std::string::npos);
  fs::remove_all(dir);
}

TEST(FlightRecorder, DumpToUnwritableDirFailsQuietly) {
  const std::string path = obs::FlightRecorder::global().dump(
      "/dev/null/not-a-dir", "crash", "job", "");
  EXPECT_TRUE(path.empty());
}

// Declared LAST in the enabled section (with its own suite name — gtest
// groups same-suite tests at the suite's first declaration) on purpose:
// it exhausts the process-wide intern pool, after which every new
// dynamic name maps to the overflow marker — the bound a malicious
// worker runs into, but one that would garble the exact-name assertions
// of the tests above.
TEST(InternPoolOverflow, BoundedOverflowYieldsMarker) {
  // Interned before the flood (each ctest-discovered test is its own
  // process, so no other test has touched the pool here).
  const char* before = obs::intern_name("intern.same");
  const char* last = "";
  for (std::size_t i = 0; i < obs::kMaxInternedNames + 16; ++i) {
    last = obs::intern_name("intern.flood." + std::to_string(i));
  }
  EXPECT_STREQ(last, "trace.name_overflow");
  // Names interned before exhaustion still resolve to their stable
  // pointers.
  EXPECT_EQ(obs::intern_name("intern.same"), before);
  EXPECT_STREQ(before, "intern.same");
}

#else  // FIXEDPART_OBS_ENABLED == 0

TEST(TraceStubs, OffBuildCompilesToNoOps) {
  obs::SpanBuffer buffer;
  obs::ScopedTraceContext context(1, &buffer);
  { obs::ScopedSpan span("off.span"); }
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_FALSE(obs::ScopedTraceContext::current().active());
  EXPECT_FALSE(obs::FlightRecorder::global().current_phase(1).found);
  EXPECT_EQ(obs::FlightRecorder::global().dump("/tmp", "r", "j", ""), "");
}

#endif

}  // namespace
}  // namespace fixedpart
