#include "place/placer.hpp"

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "gen/netlist_gen.hpp"
#include "hg/builder.hpp"
#include "place/hpwl.hpp"
#include "util/rng.hpp"

namespace fixedpart::place {
namespace {

TEST(Hpwl, HandComputed) {
  hg::HypergraphBuilder b;
  for (int i = 0; i < 3; ++i) b.add_vertex(1);
  b.add_net(std::vector<hg::VertexId>{0, 1});     // span (3,4)
  b.add_net(std::vector<hg::VertexId>{0, 1, 2});  // span (5,4)
  b.add_net(std::vector<hg::VertexId>{2});        // single pin: 0
  const hg::Hypergraph g = b.build();
  const std::vector<double> x = {0.0, 3.0, 5.0};
  const std::vector<double> y = {0.0, 4.0, 1.0};
  EXPECT_DOUBLE_EQ(net_hpwl(g, 0, x, y), 7.0);
  EXPECT_DOUBLE_EQ(net_hpwl(g, 1, x, y), 9.0);
  EXPECT_DOUBLE_EQ(net_hpwl(g, 2, x, y), 0.0);
  EXPECT_DOUBLE_EQ(half_perimeter_wirelength(g, x, y), 16.0);
}

TEST(Hpwl, SizeMismatchThrows) {
  hg::HypergraphBuilder b;
  b.add_vertex(1);
  const hg::Hypergraph g = b.build();
  const std::vector<double> x = {0.0};
  const std::vector<double> wrong = {0.0, 1.0};
  EXPECT_THROW(half_perimeter_wirelength(g, wrong, x),
               std::invalid_argument);
}

PlacementProblem problem_of(const gen::GeneratedCircuit& circuit) {
  PlacementProblem problem;
  problem.graph = &circuit.graph;
  problem.width = circuit.placement.width;
  problem.height = circuit.placement.height;
  problem.pad_x = circuit.placement.x;
  problem.pad_y = circuit.placement.y;
  return problem;
}

gen::GeneratedCircuit test_circuit(int cells = 600, std::uint64_t seed = 9) {
  gen::CircuitSpec spec;
  spec.num_cells = cells;
  spec.num_nets = cells + cells / 10;
  spec.num_pads = std::max(8, cells / 50);
  spec.seed = seed;
  return gen::generate_circuit(spec);
}

TEST(Placer, PlacesEveryCellInsideDie) {
  const auto circuit = test_circuit();
  const TopDownPlacer placer(problem_of(circuit));
  PlacerConfig config;
  config.max_levels = 5;
  util::Rng rng(1);
  const PlacementResult result = placer.run(config, rng);
  for (hg::VertexId v = 0; v < circuit.graph.num_vertices(); ++v) {
    if (circuit.graph.is_pad(v)) {
      // Pads keep their original perimeter coordinates.
      EXPECT_DOUBLE_EQ(result.x[v], circuit.placement.x[v]);
      EXPECT_DOUBLE_EQ(result.y[v], circuit.placement.y[v]);
    } else {
      EXPECT_GE(result.x[v], 0.0);
      EXPECT_LE(result.x[v], circuit.placement.width);
      EXPECT_GE(result.y[v], 0.0);
      EXPECT_LE(result.y[v], circuit.placement.height);
    }
  }
  EXPECT_GT(result.hpwl, 0.0);
}

TEST(Placer, BeatsRandomScatterByAWideMargin) {
  const auto circuit = test_circuit();
  const TopDownPlacer placer(problem_of(circuit));
  PlacerConfig config;
  config.max_levels = 6;
  util::Rng rng(2);
  const PlacementResult result = placer.run(config, rng);

  // Random scatter over the die.
  std::vector<double> rx = result.x;
  std::vector<double> ry = result.y;
  for (hg::VertexId v = 0; v < circuit.graph.num_vertices(); ++v) {
    if (circuit.graph.is_pad(v)) continue;
    rx[v] = rng.next_double() * circuit.placement.width;
    ry[v] = rng.next_double() * circuit.placement.height;
  }
  const double random_hpwl =
      half_perimeter_wirelength(circuit.graph, rx, ry);
  EXPECT_LT(result.hpwl, 0.6 * random_hpwl);
}

TEST(Placer, FixedShareGrowsWithDepth) {
  const auto circuit = test_circuit(800, 10);
  const TopDownPlacer placer(problem_of(circuit));
  PlacerConfig config;
  config.max_levels = 5;
  util::Rng rng(3);
  const PlacementResult result = placer.run(config, rng);
  ASSERT_GE(result.levels.size(), 3u);
  // Level 0 has almost no terminals; deeper levels are dominated by them
  // (the paper's Table I in action).
  EXPECT_LT(result.levels[0].avg_fixed_pct, 15.0);
  EXPECT_GT(result.levels.back().avg_fixed_pct,
            result.levels[0].avg_fixed_pct);
}

TEST(Placer, ExactEndCasesMatchHeuristicQuality) {
  const auto circuit = test_circuit(300, 11);
  const TopDownPlacer placer(problem_of(circuit));
  util::Rng rng_heuristic(4);
  util::Rng rng_exact(4);
  PlacerConfig heuristic;
  heuristic.max_levels = 6;
  PlacerConfig with_exact = heuristic;
  with_exact.exact_threshold = 16;
  const PlacementResult base = placer.run(heuristic, rng_heuristic);
  const PlacementResult exact = placer.run(with_exact, rng_exact);
  // Both are valid placements of comparable quality; exact end cases
  // should not degrade wirelength materially.
  EXPECT_LT(exact.hpwl, 1.15 * base.hpwl);
  EXPECT_GT(exact.hpwl, 0.5 * base.hpwl);
}

TEST(Placer, MinBlockSizeRespected) {
  const auto circuit = test_circuit(200, 12);
  const TopDownPlacer placer(problem_of(circuit));
  PlacerConfig config;
  config.max_levels = 20;       // more levels than the instance supports
  config.min_block_cells = 50;  // stop early instead
  util::Rng rng(5);
  const PlacementResult result = placer.run(config, rng);
  // Splitting stops once all blocks are below 50 cells: 200 -> at most 3
  // levels of splitting (200/2/2 = 50) plus one non-splitting level.
  EXPECT_LE(result.levels.size(), 4u);
}

TEST(Placer, Validation) {
  const auto circuit = test_circuit(100, 13);
  PlacementProblem problem = problem_of(circuit);
  problem.graph = nullptr;
  EXPECT_THROW(TopDownPlacer{problem}, std::invalid_argument);
  problem = problem_of(circuit);
  problem.width = 0.0;
  EXPECT_THROW(TopDownPlacer{problem}, std::invalid_argument);
  problem = problem_of(circuit);
  problem.pad_x.pop_back();
  EXPECT_THROW(TopDownPlacer{problem}, std::invalid_argument);
}

TEST(Placer, DeterministicForSeed) {
  const auto circuit = test_circuit(300, 14);
  const TopDownPlacer placer(problem_of(circuit));
  PlacerConfig config;
  config.max_levels = 4;
  util::Rng rng_a(6);
  util::Rng rng_b(6);
  const PlacementResult a = placer.run(config, rng_a);
  const PlacementResult b = placer.run(config, rng_b);
  EXPECT_DOUBLE_EQ(a.hpwl, b.hpwl);
  EXPECT_EQ(a.x, b.x);
}

}  // namespace
}  // namespace fixedpart::place
