// PartitionServer + partitiond surface (ISSUE 7; ctest label: serve):
// admission and the bounded priority queue (429 + Retry-After from the
// observed service rate), idempotent submission via the canonical content
// hash (cache hits, whitespace/comment-invariant upload hashing),
// per-request budgets degrading to best-so-far ("truncated": true),
// cooperative cancellation of queued and running jobs, graceful drain
// (503, zero lost completed work), and crash recovery replaying the
// fsync-durable event journal — empty journals, torn trailing lines,
// vanished spool files, and byte-identical re-serving across a restart.
// The HTTP half drives a live obs::HttpEndpoint through the socket fault
// helpers in fault_inject.hpp (torn writes, stalled slowloris clients,
// oversized bodies), so it is skipped under FIXEDPART_OBS=OFF. The binary
// carries the `serve` label so the whole surface runs under ASan and TSan
// on its own (docs/ROBUSTNESS.md).

#include "svc/server.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fault_inject.hpp"
#include "hg/builder.hpp"
#include "hg/io_binary.hpp"
#include "hg/io_hmetis.hpp"
#include "obs/flight.hpp"
#include "obs/http.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "svc/executor.hpp"
#include "svc/job.hpp"
#include "util/deadline.hpp"

namespace fixedpart::svc {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

class TempDir {
 public:
  TempDir() {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = fs::temp_directory_path() /
            ("fp_serve_" + std::string(info ? info->name() : "test") + "_" +
             std::to_string(counter_++));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  fs::path path_;
  static inline int counter_ = 0;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::size_t count_lines(const std::string& path) {
  const std::string text = read_file(path);
  return static_cast<std::size_t>(
      std::count(text.begin(), text.end(), '\n'));
}

/// Polls `predicate` every 2 ms for up to `limit`; true iff it held.
template <typename Pred>
bool eventually(Pred&& predicate, std::chrono::milliseconds limit = 5000ms) {
  const auto until = std::chrono::steady_clock::now() + limit;
  while (std::chrono::steady_clock::now() < until) {
    if (predicate()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return predicate();
}

/// Blocks workers until released — the lever for deterministic "queue is
/// backed up" and "job is mid-run" states.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  std::atomic<int> entered{0};

  void release() {
    std::lock_guard<std::mutex> lock(mu);
    open = true;
    cv.notify_all();
  }
  /// Waits for release() or deadline expiry (so cancellation/budgets
  /// still unwind a gated attempt cooperatively).
  void await(const util::Deadline& deadline) {
    ++entered;
    std::unique_lock<std::mutex> lock(mu);
    while (!open && !deadline.expired()) cv.wait_for(lock, 2ms);
  }
};

/// Instant runner: cut derived from the seed, no filesystem.
JobResult fast_runner(const JobSpec& spec, const util::Deadline&) {
  JobResult result;
  result.cut = static_cast<Weight>(spec.seed % 1000);
  result.moves = 3;
  result.passes = 1;
  return result;
}

/// Runner that parks on `gate`; reports truncated when it was unwound by
/// an expired deadline (budget, cancel, watchdog) instead of the gate.
JobRunner gated_runner(Gate* gate) {
  return [gate](const JobSpec& spec, const util::Deadline& deadline) {
    gate->await(deadline);
    JobResult result;
    result.cut = static_cast<Weight>(spec.seed % 1000);
    result.truncated = deadline.expired();
    return result;
  };
}

ServerConfig base_config() {
  ServerConfig config;
  config.workers = 1;
  config.queue_capacity = 4;
  config.retry.max_attempts = 1;
  config.retry.retry_truncated = false;
  config.default_budget_seconds = 30.0;
  config.max_budget_seconds = 60.0;
  config.runner = fast_runner;
  return config;
}

constexpr const char* kSpecBody =
    "{\"circuit\": 1, \"scale\": \"smoke\", \"starts\": 1, \"seed\": 7}";

/// A tiny well-formed hMETIS upload (3 nets, 4 vertices).
constexpr const char* kUpload = "3 4\n1 2\n2 3 4\n1 4\n";

// --- admission, polling, idempotency -------------------------------------

TEST(Server, SubmitRunsToCompletionAndPollsDone) {
  PartitionServer server(base_config());
  server.start();
  const SubmitResult submitted = server.submit(kSpecBody, "priority=2");
  ASSERT_EQ(submitted.http_status, 202);
  ASSERT_EQ(submitted.id.size(), 32u);  // two hex64 halves
  EXPECT_NE(submitted.body.find("\"state\": \"queued\""), std::string::npos);
  EXPECT_NE(submitted.body.find("\"priority\": 2"), std::string::npos);
  EXPECT_NE(submitted.body.find(submitted.id), std::string::npos);

  int status = 0;
  ASSERT_TRUE(eventually([&] {
    return server.status_json(submitted.id, &status)
               .find("\"state\": \"done\"") != std::string::npos;
  }));
  const std::string done = server.status_json(submitted.id, &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(done.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(done.find("\"cut\": 7"), std::string::npos);  // seed % 1000
  EXPECT_EQ(server.done_total(), 1);
  server.drain();
}

TEST(Server, ResubmissionOfDoneJobIsACacheHit) {
  PartitionServer server(base_config());
  server.start();
  const SubmitResult first = server.submit(kSpecBody, "");
  ASSERT_EQ(first.http_status, 202);
  ASSERT_TRUE(eventually([&] { return server.done_total() == 1; }));

  int status = 0;
  const std::string done = server.status_json(first.id, &status);
  const SubmitResult again = server.submit(kSpecBody, "");
  EXPECT_EQ(again.http_status, 200);
  EXPECT_EQ(again.id, first.id);
  EXPECT_EQ(again.body, done);  // the cache answers with the full record
  EXPECT_EQ(server.cache_hit_total(), 1);
  EXPECT_EQ(server.done_total(), 1);  // nothing re-ran
  server.drain();
}

TEST(Server, InFlightResubmissionReturnsTheSameHandle) {
  Gate gate;
  ServerConfig config = base_config();
  config.runner = gated_runner(&gate);
  PartitionServer server(config);
  server.start();
  const SubmitResult first = server.submit(kSpecBody, "");
  ASSERT_EQ(first.http_status, 202);
  ASSERT_TRUE(eventually([&] { return gate.entered.load() == 1; }));

  const SubmitResult again = server.submit(kSpecBody, "");
  EXPECT_EQ(again.http_status, 202);  // idempotent: same bytes, same handle
  EXPECT_EQ(again.id, first.id);
  EXPECT_NE(again.body.find("\"state\": \"running\""), std::string::npos);
  gate.release();
  ASSERT_TRUE(eventually([&] { return server.done_total() == 1; }));
  server.drain();
}

TEST(Server, UploadHashIsWhitespaceAndCommentInvariant) {
  TempDir dir;
  Gate gate;
  ServerConfig config = base_config();
  config.spool_dir = dir.file("spool");
  config.runner = gated_runner(&gate);
  PartitionServer server(config);
  server.start();

  const SubmitResult original = server.submit(kUpload, "seed=5");
  ASSERT_EQ(original.http_status, 202);
  // Same hypergraph, cosmetically different bytes: extra spaces, tabs,
  // CRLF endings, comment and blank lines.
  const std::string cosmetic =
      "% a comment\n\n  3   4 \r\n 1\t2\n2 3 4\n\n1    4\n% trailing\n";
  const SubmitResult same = server.submit(cosmetic, "seed=5");
  EXPECT_EQ(same.http_status, 202);
  EXPECT_EQ(same.id, original.id);

  // Different content (a net rewired) or different knobs: different job.
  const SubmitResult other = server.submit("3 4\n1 3\n2 3 4\n1 4\n", "seed=5");
  EXPECT_NE(other.id, original.id);
  const SubmitResult reseeded = server.submit(kUpload, "seed=6");
  EXPECT_NE(reseeded.id, original.id);

  gate.release();
  server.drain();
}

TEST(Server, FpbinUploadHashMatchesEquivalentHgr) {
  TempDir dir;
  Gate gate;
  ServerConfig config = base_config();
  config.spool_dir = dir.file("spool");
  config.runner = gated_runner(&gate);
  PartitionServer server(config);
  server.start();

  // One hypergraph, two encodings: the canonical .hgr serialization and
  // the .fpbin container. Uploading either must land on the same job id
  // (content-hash idempotency is format-independent).
  hg::HypergraphBuilder b;
  b.add_vertex(3);
  b.add_vertex(1);
  b.add_vertex(2);
  b.add_net(std::vector<hg::VertexId>{0, 1});
  b.add_net(std::vector<hg::VertexId>{1, 2}, 5);
  const hg::Hypergraph graph = b.build();

  std::ostringstream hgr;
  hg::write_hmetis(hgr, graph);
  const std::string fpbin_path = dir.file("instance.fpbin");
  hg::write_fpbin_file(fpbin_path, graph);
  const std::string fpbin_bytes = read_file(fpbin_path);
  ASSERT_TRUE(hg::is_fpbin(fpbin_bytes));

  const SubmitResult as_text = server.submit(hgr.str(), "seed=5");
  ASSERT_EQ(as_text.http_status, 202);
  const SubmitResult as_binary = server.submit(fpbin_bytes, "seed=5");
  EXPECT_EQ(as_binary.http_status, 202);
  EXPECT_EQ(as_binary.id, as_text.id);

  // A different graph in .fpbin form is a different job.
  hg::HypergraphBuilder b2;
  b2.add_vertex(3);
  b2.add_vertex(1);
  b2.add_vertex(2);
  b2.add_net(std::vector<hg::VertexId>{0, 2});
  b2.add_net(std::vector<hg::VertexId>{1, 2}, 5);
  const std::string other_path = dir.file("other.fpbin");
  hg::write_fpbin_file(other_path, b2.build());
  const SubmitResult other = server.submit(read_file(other_path), "seed=5");
  EXPECT_EQ(other.http_status, 202);
  EXPECT_NE(other.id, as_text.id);

  // A corrupted binary body is a 400, not an accepted garbage job.
  std::string corrupt = fpbin_bytes;
  corrupt[corrupt.size() - 1] =
      static_cast<char>(corrupt[corrupt.size() - 1] ^ 0x01);
  EXPECT_EQ(server.submit(corrupt, "seed=5").http_status, 400);

  gate.release();
  server.drain();
}

TEST(Server, FpbinUploadIsSpooledWithBinaryExtension) {
  TempDir dir;
  std::mutex mu;
  std::string seen_instance;
  ServerConfig config = base_config();
  config.spool_dir = dir.file("spool");
  config.runner = [&](const JobSpec& spec, const util::Deadline&) {
    std::lock_guard<std::mutex> lock(mu);
    seen_instance = spec.instance;
    return JobResult{};
  };
  PartitionServer server(config);
  server.start();

  hg::HypergraphBuilder b;
  b.add_vertex(1);
  b.add_vertex(1);
  b.add_net(std::vector<hg::VertexId>{0, 1});
  const std::string path = dir.file("up.fpbin");
  hg::write_fpbin_file(path, b.build());
  const std::string bytes = read_file(path);

  const SubmitResult submitted = server.submit(bytes, "");
  ASSERT_EQ(submitted.http_status, 202);
  ASSERT_TRUE(eventually([&] { return server.done_total() == 1; }));
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_FALSE(seen_instance.empty());
  EXPECT_TRUE(seen_instance.ends_with(".fpbin"));
  EXPECT_EQ(read_file(seen_instance), bytes);  // spooled verbatim
  server.drain();
}

TEST(Server, UploadIsSpooledAndRunnerSeesTheSpoolPath) {
  TempDir dir;
  std::mutex mu;
  std::string seen_instance;
  ServerConfig config = base_config();
  config.spool_dir = dir.file("spool");
  config.runner = [&](const JobSpec& spec, const util::Deadline&) {
    std::lock_guard<std::mutex> lock(mu);
    seen_instance = spec.instance;
    return JobResult{};
  };
  PartitionServer server(config);
  server.start();
  const SubmitResult submitted = server.submit(kUpload, "");
  ASSERT_EQ(submitted.http_status, 202);
  ASSERT_TRUE(eventually([&] { return server.done_total() == 1; }));
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_FALSE(seen_instance.empty());
  EXPECT_EQ(read_file(seen_instance), kUpload);  // spooled verbatim
  server.drain();
}

TEST(Server, RawUploadWithoutSpoolDirIsRejected) {
  PartitionServer server(base_config());  // no spool_dir
  server.start();
  const SubmitResult rejected = server.submit(kUpload, "");
  EXPECT_EQ(rejected.http_status, 400);
  EXPECT_NE(rejected.body.find("spool"), std::string::npos);
  server.drain();
}

TEST(Server, MalformedRequestsAre400NeverCrashes) {
  PartitionServer server(base_config());
  server.start();
  EXPECT_EQ(server.submit("", "").http_status, 400);             // empty
  EXPECT_EQ(server.submit("   \n  ", "").http_status, 400);      // blank
  EXPECT_EQ(server.submit("{\"circuit\": 99}", "").http_status, 400);
  EXPECT_EQ(server.submit("{broken", "").http_status, 400);
  EXPECT_EQ(server.submit("{}\n{}", "").http_status, 400);       // two lines
  EXPECT_EQ(server.submit(kSpecBody, "starts=zero").http_status, 400);
  EXPECT_EQ(server.submit(kSpecBody, "starts=-3").http_status, 400);
  EXPECT_EQ(server.submit(kSpecBody, "nosuchknob=1").http_status, 400);
  EXPECT_EQ(server.done_total(), 0);
  server.drain();
}

TEST(Server, EmptySpecGetsDefaultsAndRuns) {
  PartitionServer server(base_config());
  server.start();
  const SubmitResult submitted = server.submit("{}", "");
  ASSERT_EQ(submitted.http_status, 202);
  ASSERT_TRUE(eventually([&] { return server.done_total() == 1; }));
  server.drain();
}

// --- load shedding ---------------------------------------------------------

TEST(Server, FullQueueShedsWith429AndRetryAfter) {
  Gate gate;
  ServerConfig config = base_config();
  config.queue_capacity = 1;
  config.runner = gated_runner(&gate);
  PartitionServer server(config);
  server.start();

  // First job occupies the worker, second fills the queue.
  ASSERT_EQ(server.submit("{\"seed\": 1}", "").http_status, 202);
  ASSERT_TRUE(eventually([&] { return gate.entered.load() == 1; }));
  ASSERT_EQ(server.submit("{\"seed\": 2}", "").http_status, 202);

  const SubmitResult shed = server.submit("{\"seed\": 3}", "");
  EXPECT_EQ(shed.http_status, 429);
  EXPECT_GE(shed.retry_after_seconds, 1.0);
  EXPECT_LE(shed.retry_after_seconds, 600.0);
  EXPECT_NE(shed.body.find("retry_after_seconds"), std::string::npos);
  EXPECT_EQ(server.shed_total(), 1);

  // Shedding is not sticky: released capacity admits again.
  gate.release();
  ASSERT_TRUE(eventually([&] { return server.done_total() == 2; }));
  EXPECT_EQ(server.submit("{\"seed\": 3}", "").http_status, 202);
  ASSERT_TRUE(eventually([&] { return server.done_total() == 3; }));
  server.drain();
}

TEST(Server, RetryAfterBeforeFirstCompletionIsConfiguredDefault) {
  Gate gate;
  ServerConfig config = base_config();
  config.queue_capacity = 1;
  config.retry_after_no_data_seconds = 7.0;
  // Must NOT leak into the estimate: the old behaviour multiplied this
  // ceiling by the backlog and told the first wave of shed clients to
  // come back in minutes.
  config.default_budget_seconds = 30.0;
  config.runner = gated_runner(&gate);
  PartitionServer server(config);
  server.start();
  ASSERT_EQ(server.submit("{\"seed\": 1}", "").http_status, 202);
  ASSERT_TRUE(eventually([&] { return gate.entered.load() == 1; }));
  ASSERT_EQ(server.submit("{\"seed\": 2}", "").http_status, 202);

  const SubmitResult shed = server.submit("{\"seed\": 3}", "");
  ASSERT_EQ(shed.http_status, 429);
  // Zero jobs completed: no observed service rate exists, so the
  // estimate is exactly the configured constant — deterministic across
  // runs and independent of backlog depth.
  EXPECT_EQ(shed.retry_after_seconds, 7.0);
  EXPECT_EQ(server.retry_after_seconds(), 7.0);
  gate.release();
  server.drain();
}

TEST(Server, RetryAfterNoDataDefaultIsClampedToFloor) {
  Gate gate;
  ServerConfig config = base_config();
  config.queue_capacity = 1;
  config.retry_after_no_data_seconds = 0.01;  // nonsense-small
  config.runner = gated_runner(&gate);
  PartitionServer server(config);
  server.start();
  ASSERT_EQ(server.submit("{\"seed\": 1}", "").http_status, 202);
  ASSERT_TRUE(eventually([&] { return gate.entered.load() == 1; }));
  EXPECT_EQ(server.retry_after_seconds(), 1.0);  // clamp floor, HTTP-sane
  gate.release();
  server.drain();
}

TEST(Server, HigherPriorityJumpsTheQueue) {
  Gate gate;
  std::mutex order_mu;
  std::vector<std::uint64_t> order;
  ServerConfig config = base_config();
  config.runner = [&](const JobSpec& spec, const util::Deadline& deadline) {
    {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(spec.seed);
    }
    gate.await(deadline);
    return JobResult{};
  };
  PartitionServer server(config);
  server.start();
  // Occupy the single worker, then queue low before high.
  ASSERT_EQ(server.submit("{\"seed\": 1}", "").http_status, 202);
  ASSERT_TRUE(eventually([&] { return gate.entered.load() == 1; }));
  ASSERT_EQ(server.submit("{\"seed\": 2}", "priority=-1").http_status, 202);
  ASSERT_EQ(server.submit("{\"seed\": 3}", "priority=9").http_status, 202);

  gate.release();
  ASSERT_TRUE(eventually([&] { return server.done_total() == 3; }));
  std::lock_guard<std::mutex> lock(order_mu);
  // Seed 3 (priority 9) must run before seed 2 (priority -1).
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);  // was already running
  EXPECT_EQ(order[1], 3u);
  EXPECT_EQ(order[2], 2u);
  server.drain();
}

// --- budgets and cancellation ----------------------------------------------

TEST(Server, BudgetExpiryDegradesToTruncatedNotError) {
  Gate gate;  // never released: only the budget can unwind the attempt
  ServerConfig config = base_config();
  config.runner = gated_runner(&gate);
  PartitionServer server(config);
  server.start();
  const SubmitResult submitted =
      server.submit(kSpecBody, "budget_seconds=0.05");
  ASSERT_EQ(submitted.http_status, 202);
  int status = 0;
  ASSERT_TRUE(eventually([&] {
    return server.status_json(submitted.id, &status)
               .find("\"state\": \"done\"") != std::string::npos;
  }));
  const std::string done = server.status_json(submitted.id, &status);
  EXPECT_NE(done.find("\"status\": \"truncated\""), std::string::npos);
  EXPECT_NE(done.find("\"truncated\": true"), std::string::npos);
  server.drain();
}

TEST(Server, BudgetIsClampedToTheCeiling) {
  std::atomic<bool> oversized{false};
  ServerConfig config = base_config();
  config.max_budget_seconds = 2.0;
  config.runner = [&](const JobSpec& spec, const util::Deadline&) {
    if (spec.budget_seconds > 2.0) oversized.store(true);
    return JobResult{};
  };
  PartitionServer server(config);
  server.start();
  ASSERT_EQ(server.submit(kSpecBody, "budget_seconds=9999").http_status, 202);
  ASSERT_TRUE(eventually([&] { return server.done_total() == 1; }));
  EXPECT_FALSE(oversized.load());
  server.drain();
}

TEST(Server, CancelQueuedJobRemovesItBeforeItRuns) {
  Gate gate;
  ServerConfig config = base_config();
  config.runner = gated_runner(&gate);
  PartitionServer server(config);
  server.start();
  ASSERT_EQ(server.submit("{\"seed\": 1}", "").http_status, 202);
  ASSERT_TRUE(eventually([&] { return gate.entered.load() == 1; }));
  const SubmitResult queued = server.submit("{\"seed\": 2}", "");
  ASSERT_EQ(queued.http_status, 202);

  std::string body;
  EXPECT_EQ(server.cancel(queued.id, &body), 200);
  EXPECT_NE(body.find("\"state\": \"cancelled\""), std::string::npos);
  EXPECT_EQ(server.cancel(queued.id, &body), 200);  // idempotent
  gate.release();
  ASSERT_TRUE(eventually([&] { return server.done_total() == 1; }));
  EXPECT_EQ(server.done_total(), 1);  // the cancelled job never ran
  server.drain();
}

TEST(Server, CancelRunningJobUnwindsCooperatively) {
  Gate gate;  // never released: only the cancel can unwind it
  ServerConfig config = base_config();
  config.runner = gated_runner(&gate);
  PartitionServer server(config);
  server.start();
  const SubmitResult submitted = server.submit(kSpecBody, "");
  ASSERT_EQ(submitted.http_status, 202);
  ASSERT_TRUE(eventually([&] { return gate.entered.load() == 1; }));

  std::string body;
  EXPECT_EQ(server.cancel(submitted.id, &body), 202);  // cooperative
  int status = 0;
  ASSERT_TRUE(eventually([&] {
    return server.status_json(submitted.id, &status)
               .find("\"state\": \"cancelled\"") != std::string::npos;
  }));
  // The best-so-far outcome is still recorded (truncated), not lost.
  const std::string record = server.status_json(submitted.id, &status);
  EXPECT_NE(record.find("\"truncated\": true"), std::string::npos);
  server.drain();
}

TEST(Server, CancelStatusCodesForUnknownAndDone) {
  PartitionServer server(base_config());
  server.start();
  std::string body;
  EXPECT_EQ(server.cancel("deadbeef", &body), 404);
  const SubmitResult submitted = server.submit(kSpecBody, "");
  ASSERT_TRUE(eventually([&] { return server.done_total() == 1; }));
  EXPECT_EQ(server.cancel(submitted.id, &body), 409);  // done is immutable
  EXPECT_NE(body.find("\"state\": \"done\""), std::string::npos);
  server.drain();
}

// --- watchdog ---------------------------------------------------------------

TEST(Server, WatchdogCancelsAStuckAttempt) {
  Gate gate;  // never released: the attempt is genuinely stuck
  ServerConfig config = base_config();
  config.hang_seconds = 0.1;
  config.runner = gated_runner(&gate);
  PartitionServer server(config);
  server.start();
  const SubmitResult submitted = server.submit(kSpecBody, "");
  ASSERT_EQ(submitted.http_status, 202);
  int status = 0;
  ASSERT_TRUE(eventually([&] {
    return server.status_json(submitted.id, &status)
               .find("\"state\": \"done\"") != std::string::npos;
  }));
  const std::string done = server.status_json(submitted.id, &status);
  EXPECT_NE(done.find("\"truncated\": true"), std::string::npos);
  server.drain();
}

// --- drain ------------------------------------------------------------------

TEST(Server, DrainRefusesNewWorkAndKeepsCompletedResults) {
  PartitionServer server(base_config());
  server.start();
  const SubmitResult submitted = server.submit(kSpecBody, "");
  ASSERT_TRUE(eventually([&] { return server.done_total() == 1; }));
  server.drain();
  EXPECT_TRUE(server.draining());

  const SubmitResult refused = server.submit("{\"seed\": 9}", "");
  EXPECT_EQ(refused.http_status, 503);
  // Completed results stay servable through the drain.
  int status = 0;
  EXPECT_NE(server.status_json(submitted.id, &status)
                .find("\"state\": \"done\""),
            std::string::npos);
  EXPECT_EQ(status, 200);
  server.drain();  // idempotent
}

TEST(Server, DrainLeavesQueuedJobsJournaledForRestart) {
  TempDir dir;
  Gate gate;
  ServerConfig config = base_config();
  config.journal_path = dir.file("jobs.journal");
  config.runner = gated_runner(&gate);
  {
    PartitionServer server(config);
    server.start();
    ASSERT_EQ(server.submit("{\"seed\": 1}", "").http_status, 202);
    ASSERT_TRUE(eventually([&] { return gate.entered.load() == 1; }));
    ASSERT_EQ(server.submit("{\"seed\": 2}", "").http_status, 202);
    // Drain while the first job is mid-run: the worker must finish and
    // journal it, but never pop the queued one.
    std::thread drainer([&] { server.drain(); });
    ASSERT_TRUE(eventually([&] { return server.draining(); }));
    gate.release();
    drainer.join();
    EXPECT_EQ(server.done_total(), 1);
    EXPECT_EQ(server.queued(), 1u);
  }
  ServerConfig fresh = base_config();
  fresh.journal_path = config.journal_path;
  PartitionServer restarted(fresh);
  restarted.start();
  // Everything accepted is either already done (journaled result) or
  // re-enqueued — no submission is forgotten by a graceful drain.
  EXPECT_EQ(restarted.recovered(), 1);
  ASSERT_TRUE(eventually([&] { return restarted.done_total() == 2; }));
  restarted.drain();
}

// --- journal replay edge cases ---------------------------------------------

TEST(Server, EmptyJournalStartsCleanly) {
  TempDir dir;
  ServerConfig config = base_config();
  config.journal_path = dir.file("jobs.journal");
  std::ofstream(config.journal_path).close();  // exists, zero bytes
  PartitionServer server(config);
  server.start();
  EXPECT_EQ(server.recovered(), 0);
  EXPECT_EQ(server.done_total(), 0);
  ASSERT_EQ(server.submit(kSpecBody, "").http_status, 202);
  ASSERT_TRUE(eventually([&] { return server.done_total() == 1; }));
  server.drain();
}

TEST(Server, TornTrailingJournalLineIsDiscardedOnReplay) {
  TempDir dir;
  const std::string journal_path = dir.file("jobs.journal");
  std::string accept_line;
  {
    ServerConfig config = base_config();
    config.journal_path = journal_path;
    Gate gate;
    config.runner = gated_runner(&gate);
    PartitionServer server(config);
    server.start();
    ASSERT_EQ(server.submit(kSpecBody, "").http_status, 202);
    gate.release();
    ASSERT_TRUE(eventually([&] { return server.done_total() == 1; }));
    server.drain();
  }
  // Simulate a crash mid-append: a second accept line cut off mid-write.
  {
    std::ofstream out(journal_path, std::ios::app | std::ios::binary);
    out << "{\"event\": \"accept\", \"priority\": 0, \"id\": \"torn";
  }
  ServerConfig config = base_config();
  config.journal_path = journal_path;
  PartitionServer server(config);
  server.start();
  EXPECT_EQ(server.done_total(), 1);  // the complete record survived
  EXPECT_EQ(server.recovered(), 0);   // the torn accept did not resurrect
  int status = 0;
  server.status_json("torn", &status);
  EXPECT_EQ(status, 404);
  // The journal was compacted: the torn tail is gone from disk.
  EXPECT_EQ(read_file(journal_path).find("torn"), std::string::npos);
  server.drain();
}

TEST(Server, ReplayedJobWithVanishedInputFailsPermanentlyNotFatally) {
  TempDir dir;
  const std::string journal_path = dir.file("jobs.journal");
  {
    // Journal an accepted job whose spooled input no longer exists, as
    // after a crash that lost the spool volume but kept the journal.
    JobSpec spec;
    spec.id = "0123456789abcdef0123456789abcdef";
    spec.instance = dir.file("vanished.hgr");  // never written
    std::ofstream out(journal_path, std::ios::binary);
    out << "{\"event\": \"accept\", \"priority\": 0, "
        << to_json_line(spec).substr(1) << "\n";
  }
  ServerConfig config = base_config();
  config.journal_path = journal_path;
  config.runner = {};  // the real runner: it must hit the missing file
  PartitionServer server(config);
  server.start();
  EXPECT_EQ(server.recovered(), 1);
  int status = 0;
  ASSERT_TRUE(eventually([&] {
    return server.status_json("0123456789abcdef0123456789abcdef", &status)
               .find("\"state\": \"done\"") != std::string::npos;
  }));
  const std::string done =
      server.status_json("0123456789abcdef0123456789abcdef", &status);
  EXPECT_NE(done.find("\"status\": \"failed\""), std::string::npos);
  EXPECT_NE(done.find("\"error\": \"input\""), std::string::npos);
  server.drain();
}

TEST(Server, RestartServesJournaledResultsByteIdentically) {
  TempDir dir;
  ServerConfig config = base_config();
  config.journal_path = dir.file("jobs.journal");
  std::vector<std::string> ids;
  std::vector<std::string> records;
  {
    PartitionServer server(config);
    server.start();
    for (int seed = 1; seed <= 3; ++seed) {
      const SubmitResult submitted = server.submit(
          "{\"seed\": " + std::to_string(seed) + "}", "priority=1");
      ASSERT_EQ(submitted.http_status, 202);
      ids.push_back(submitted.id);
    }
    ASSERT_TRUE(eventually([&] { return server.done_total() == 3; }));
    int status = 0;
    for (const std::string& id : ids) {
      records.push_back(server.status_json(id, &status));
    }
    server.drain();
  }
  ServerConfig fresh = base_config();
  fresh.journal_path = config.journal_path;
  std::atomic<int> reruns{0};
  fresh.runner = [&](const JobSpec& spec, const util::Deadline& deadline) {
    ++reruns;
    return fast_runner(spec, deadline);
  };
  PartitionServer restarted(fresh);
  restarted.start();
  EXPECT_EQ(restarted.done_total(), 3);
  EXPECT_EQ(restarted.recovered(), 0);
  int status = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(restarted.status_json(ids[i], &status), records[i]);
    EXPECT_EQ(status, 200);
  }
  // Resubmitting replayed work is a cache hit, not a re-run.
  EXPECT_EQ(restarted.submit("{\"seed\": 1}", "priority=1").http_status, 200);
  EXPECT_EQ(restarted.cache_hit_total(), 1);
  EXPECT_EQ(reruns.load(), 0);
  restarted.drain();
}

TEST(Server, CancelEventsReplayAsCancelled) {
  TempDir dir;
  ServerConfig config = base_config();
  config.journal_path = dir.file("jobs.journal");
  std::string cancelled_id;
  {
    Gate gate;
    ServerConfig first = config;
    first.runner = gated_runner(&gate);
    PartitionServer server(first);
    server.start();
    ASSERT_EQ(server.submit("{\"seed\": 1}", "").http_status, 202);
    ASSERT_TRUE(eventually([&] { return gate.entered.load() == 1; }));
    const SubmitResult queued = server.submit("{\"seed\": 2}", "");
    cancelled_id = queued.id;
    std::string body;
    ASSERT_EQ(server.cancel(queued.id, &body), 200);
    gate.release();
    ASSERT_TRUE(eventually([&] { return server.done_total() == 1; }));
    server.drain();
  }
  PartitionServer restarted(config);
  restarted.start();
  int status = 0;
  const std::string record = restarted.status_json(cancelled_id, &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(record.find("\"state\": \"cancelled\""), std::string::npos);
  EXPECT_EQ(restarted.recovered(), 0);  // cancelled jobs stay cancelled
  restarted.drain();
}

// --- journal compaction -----------------------------------------------------

// The core equivalence: a journal that has been compacted (atomically
// rewritten to the live job set) and the raw uncompacted journal it came
// from must recover byte-identical job records on restart. Runs the
// workload once without compaction, snapshots the records, then restarts
// on a copy with aggressive compaction and compares — before and after
// the compactor has rewritten the file.
TEST(Server, CompactedJournalRecoversByteIdenticalRecords) {
  TempDir dir;
  ServerConfig config = base_config();
  config.journal_path = dir.file("raw.journal");
  config.queue_capacity = 16;  // hold all 10 at once, no shedding
  config.journal_compact_every = 0;  // uncompacted reference run
  std::vector<std::string> ids;
  std::vector<std::string> records;
  {
    PartitionServer server(config);
    server.start();
    for (int seed = 1; seed <= 10; ++seed) {
      const SubmitResult submitted = server.submit(
          "{\"seed\": " + std::to_string(seed) + "}", "priority=2");
      ASSERT_EQ(submitted.http_status, 202);
      ids.push_back(submitted.id);
    }
    ASSERT_TRUE(eventually([&] { return server.done_total() == 10; }));
    int status = 0;
    for (const std::string& id : ids) {
      records.push_back(server.status_json(id, &status));
    }
    server.drain();
    EXPECT_EQ(server.journal_compactions(), 0);
  }
  const std::size_t raw_lines = count_lines(config.journal_path);
  EXPECT_EQ(raw_lines, 20u);  // accept + done per job

  // Restart on a copy with an aggressive compaction threshold. Replay
  // counts the 20 replayed lines toward the trigger, so the supervisor
  // compacts shortly after start without any fresh appends.
  const std::string copy_path = dir.file("compacting.journal");
  fs::copy_file(config.journal_path, copy_path);
  ServerConfig compacting = base_config();
  compacting.journal_path = copy_path;
  compacting.journal_compact_every = 4;
  {
    PartitionServer server(compacting);
    server.start();
    EXPECT_EQ(server.done_total(), 10);
    ASSERT_TRUE(eventually([&] { return server.journal_compactions() >= 1; }));
    int status = 0;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      EXPECT_EQ(server.status_json(ids[i], &status), records[i]);
      EXPECT_EQ(status, 200);
    }
    server.drain();
  }
  // Every job is still live (nothing evicted), so compaction preserves
  // all 20 lines — normalized to per-job accept/done order.
  EXPECT_EQ(count_lines(copy_path), 20u);

  // Restart on the compacted file: same records, byte for byte.
  ServerConfig fresh = base_config();
  fresh.journal_path = copy_path;
  PartitionServer restarted(fresh);
  restarted.start();
  EXPECT_EQ(restarted.done_total(), 10);
  EXPECT_EQ(restarted.recovered(), 0);
  int status = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(restarted.status_json(ids[i], &status), records[i]);
    EXPECT_EQ(status, 200);
  }
  restarted.drain();
}

// The boundedness claim: with a small result cache, a long-lived server's
// journal stays proportional to the live job set, not lifetime traffic —
// compaction drops the accept/done lines of evicted jobs.
TEST(Server, CompactionBoundsJournalByLiveJobSet) {
  TempDir dir;
  ServerConfig config = base_config();
  config.journal_path = dir.file("bounded.journal");
  config.done_capacity = 2;
  config.journal_compact_every = 4;
  PartitionServer server(config);
  server.start();
  for (int seed = 1; seed <= 12; ++seed) {
    const SubmitResult submitted =
        server.submit("{\"seed\": " + std::to_string(seed) + "}", "");
    ASSERT_EQ(submitted.http_status, 202);
    ASSERT_TRUE(eventually([&] { return server.done_total() == seed; }));
  }
  // 12 jobs wrote 24 lines; after the final compaction only the 2 cached
  // jobs' lines remain (plus at most one compaction window of appends).
  ASSERT_TRUE(eventually([&] { return server.journal_compactions() >= 3; }));
  ASSERT_TRUE(eventually([&] {
    // <= live-set lines plus one compaction window of fresh appends;
    // far below the 24 lines an unbounded journal would hold.
    return count_lines(config.journal_path) <= 10;
  }));
  server.drain();

  // The survivors replay; the evicted majority is genuinely gone (404),
  // which is the documented price of a bounded journal.
  ServerConfig fresh = base_config();
  fresh.journal_path = config.journal_path;
  PartitionServer restarted(fresh);
  restarted.start();
  EXPECT_LE(restarted.done_total(), 4);
  EXPECT_GE(restarted.done_total(), 2);
  restarted.drain();
}

// Cancelled jobs must survive compaction as cancelled: the rewritten
// journal re-emits their cancel line, not just the accept.
TEST(Server, CancelledStateSurvivesCompaction) {
  TempDir dir;
  ServerConfig config = base_config();
  config.journal_path = dir.file("cancel.journal");
  config.journal_compact_every = 1;  // compact at every opportunity
  std::string cancelled_id;
  {
    Gate gate;
    ServerConfig first = config;
    first.runner = gated_runner(&gate);
    PartitionServer server(first);
    server.start();
    ASSERT_EQ(server.submit("{\"seed\": 1}", "").http_status, 202);
    ASSERT_TRUE(eventually([&] { return gate.entered.load() == 1; }));
    const SubmitResult queued = server.submit("{\"seed\": 2}", "");
    cancelled_id = queued.id;
    std::string body;
    ASSERT_EQ(server.cancel(queued.id, &body), 200);
    gate.release();
    ASSERT_TRUE(eventually([&] { return server.done_total() == 1; }));
    ASSERT_TRUE(eventually([&] { return server.journal_compactions() >= 1; }));
    server.drain();
  }
  PartitionServer restarted(config);
  restarted.start();
  int status = 0;
  const std::string record = restarted.status_json(cancelled_id, &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(record.find("\"state\": \"cancelled\""), std::string::npos);
  EXPECT_EQ(restarted.recovered(), 0);
  restarted.drain();
}

// --- progress ---------------------------------------------------------------

TEST(Server, ProgressJsonTracksCounts) {
  PartitionServer server(base_config());
  server.start();
  ASSERT_EQ(server.submit(kSpecBody, "").http_status, 202);
  ASSERT_TRUE(eventually([&] { return server.done_total() == 1; }));
  const std::string progress = server.progress_json();
  EXPECT_NE(progress.find("\"done\": 1"), std::string::npos);
  EXPECT_NE(progress.find("\"queued\": 0"), std::string::npos);
  EXPECT_NE(progress.find("\"draining\": false"), std::string::npos);
  EXPECT_NE(progress.find("\"retry_after_seconds\""), std::string::npos);
  server.drain();
}

// --- per-job traces + flight recorder (PR 10) ------------------------------

/// Runner that opens a recognizable span so the job's trace has a known
/// marker (lands in the per-job buffer via the thread-local context that
/// run_supervised_job pushes around the attempt).
JobResult traced_runner(const JobSpec& spec, const util::Deadline& deadline) {
  obs::ScopedSpan span("test.phase");
  return fast_runner(spec, deadline);
}

TEST(ServerTrace, TraceIsServedAfterCompletionAnd404Before) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "FIXEDPART_OBS=OFF";
  ServerConfig config = base_config();
  config.runner = traced_runner;
  PartitionServer server(config);
  server.start();
  int status = 0;
  server.trace_json("0123456789abcdef0123456789abcdef", &status);
  EXPECT_EQ(status, 404);  // unknown job: clean 404, not an empty trace
  const SubmitResult submitted = server.submit(kSpecBody, "");
  ASSERT_EQ(submitted.http_status, 202);
  ASSERT_TRUE(eventually([&] { return server.done_total() == 1; }));
  const std::string trace = server.trace_json(submitted.id, &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"test.phase\""), std::string::npos);
  // Rendered once and cached: byte-identical on re-read.
  EXPECT_EQ(trace, server.trace_json(submitted.id, &status));
  server.drain();
}

TEST(ServerTrace, TraceBytesGaugeGrowsAndShrinksWithEviction) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "FIXEDPART_OBS=OFF";
  ServerConfig config = base_config();
  config.runner = traced_runner;
  config.done_capacity = 1;
  PartitionServer server(config);
  server.start();
  const SubmitResult first = server.submit(kSpecBody, "");
  ASSERT_EQ(first.http_status, 202);
  ASSERT_TRUE(eventually([&] { return server.done_total() == 1; }));
  const obs::Snapshot after_first = obs::Registry::global().scrape();
  const obs::GaugeValue* gauge =
      after_first.gauge("svc.server.trace_bytes");
  ASSERT_NE(gauge, nullptr);
  EXPECT_GT(gauge->value, 0.0);

  // A second distinct job evicts the first (done_capacity = 1): its
  // cached trace goes with it and the gauge tracks only the survivor.
  const SubmitResult second = server.submit(
      "{\"circuit\": 1, \"scale\": \"smoke\", \"starts\": 1, \"seed\": 8}",
      "");
  ASSERT_EQ(second.http_status, 202);
  ASSERT_TRUE(eventually([&] { return server.done_total() == 2; }));
  int status = 0;
  server.trace_json(first.id, &status);
  EXPECT_EQ(status, 404);  // evicted with the result record
  const std::string survivor = server.trace_json(second.id, &status);
  EXPECT_EQ(status, 200);
  const obs::Snapshot after_evict = obs::Registry::global().scrape();
  gauge = after_evict.gauge("svc.server.trace_bytes");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->value, static_cast<double>(survivor.size()));
  server.drain();
}

TEST(ServerTrace, RestartAnswers404NotAPartialTrace) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "FIXEDPART_OBS=OFF";
  TempDir dir;
  ServerConfig config = base_config();
  config.runner = traced_runner;
  config.journal_path = dir.file("jobs.journal");
  std::string id;
  {
    PartitionServer server(config);
    server.start();
    const SubmitResult submitted = server.submit(kSpecBody, "");
    ASSERT_EQ(submitted.http_status, 202);
    id = submitted.id;
    ASSERT_TRUE(eventually([&] { return server.done_total() == 1; }));
    int status = 0;
    server.trace_json(id, &status);
    ASSERT_EQ(status, 200);
    server.drain();
  }
  // The journal replays the outcome, never in-flight spans: the restarted
  // server re-serves the result but answers the trace route with a clean
  // 404 — whole trace or nothing, never a truncated one.
  PartitionServer restarted(config);
  restarted.start();
  int status = 0;
  const std::string record = restarted.status_json(id, &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(record.find("\"state\": \"done\""), std::string::npos);
  restarted.trace_json(id, &status);
  EXPECT_EQ(status, 404);
  restarted.drain();
}

TEST(ServerTrace, ProgressListsRunningJobsWithLivePhase) {
  Gate gate;
  ServerConfig config = base_config();
  config.runner = [&gate](const JobSpec& spec,
                          const util::Deadline& deadline) {
    // The span stays open while the job is parked on the gate — exactly
    // what /progress should report as the current phase.
    obs::ScopedSpan span("test.gated_phase");
    gate.await(deadline);
    return fast_runner(spec, deadline);
  };
  PartitionServer server(config);
  server.start();
  const SubmitResult submitted = server.submit(kSpecBody, "");
  ASSERT_EQ(submitted.http_status, 202);
  ASSERT_TRUE(eventually([&] { return gate.entered.load() == 1; }));
  const std::string progress = server.progress_json();
  EXPECT_NE(progress.find("\"running_jobs\": [{\"id\": \"" + submitted.id),
            std::string::npos);
  if constexpr (obs::kEnabled) {
    EXPECT_NE(progress.find("\"phase\": \"test.gated_phase\""),
              std::string::npos);
    EXPECT_NE(progress.find("\"phase_seconds\""), std::string::npos);
  }
  gate.release();
  ASSERT_TRUE(eventually([&] { return server.done_total() == 1; }));
  EXPECT_NE(server.progress_json().find("\"running_jobs\": []"),
            std::string::npos);
  server.drain();
}

TEST(ServerTrace, WatchdogFireDumpsFlightRecord) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "FIXEDPART_OBS=OFF";
  TempDir dir;
  Gate gate;  // never released: only the watchdog ends the attempt
  ServerConfig config = base_config();
  config.runner = [&gate](const JobSpec& spec,
                          const util::Deadline& deadline) {
    obs::ScopedSpan span("test.stuck_phase");
    gate.await(deadline);
    JobResult result;
    result.cut = static_cast<Weight>(spec.seed % 1000);
    result.truncated = deadline.expired();
    return result;
  };
  config.hang_seconds = 0.2;
  config.flight_dir = dir.file("flight");
  PartitionServer server(config);
  server.start();
  const SubmitResult submitted = server.submit(kSpecBody, "");
  ASSERT_EQ(submitted.http_status, 202);
  const std::string expected =
      config.flight_dir + "/watchdog-" + submitted.id + ".json";
  ASSERT_TRUE(eventually([&] { return fs::exists(expected); }));
  const std::string dump = read_file(expected);
  EXPECT_NE(dump.find("\"reason\": \"watchdog\""), std::string::npos);
  EXPECT_NE(dump.find("\"job\": \"" + submitted.id + "\""),
            std::string::npos);
  EXPECT_NE(dump.find("\"phase\": \"test.stuck_phase\""), std::string::npos);
  ASSERT_TRUE(eventually([&] { return server.done_total() == 1; }));
  server.drain();
}

#if FIXEDPART_OBS_ENABLED && defined(__unix__)

// --- the HTTP surface (live endpoint + socket faults) -----------------------

using fixedpart::testing::http_body;
using fixedpart::testing::http_exchange;
using fixedpart::testing::http_request;
using fixedpart::testing::http_status;

struct LiveDaemon {
  explicit LiveDaemon(ServerConfig server_config,
                      double io_timeout_seconds = 5.0,
                      std::size_t max_request_bytes = 1u << 20)
      : server(std::move(server_config)) {
    server.start();
    obs::HttpEndpointConfig endpoint_config;
    endpoint_config.io_timeout_seconds = io_timeout_seconds;
    endpoint_config.max_request_bytes = max_request_bytes;
    endpoint_config.progress = [this] { return server.progress_json(); };
    endpoint_config.handler = [this](const obs::HttpRequest& request,
                                     obs::HttpResponse& response) {
      return server.handle(request, response);
    };
    endpoint = std::make_unique<obs::HttpEndpoint>(endpoint_config);
    endpoint->start();
  }
  ~LiveDaemon() {
    endpoint->stop();
    server.drain();
  }
  std::uint16_t port() const { return endpoint->port(); }

  PartitionServer server;
  std::unique_ptr<obs::HttpEndpoint> endpoint;
};

TEST(ServerHttp, SubmitPollCancelOverRealSockets) {
  Gate gate;
  ServerConfig config = base_config();
  config.runner = gated_runner(&gate);
  LiveDaemon daemon(config);

  const std::string accepted = http_exchange(
      daemon.port(), http_request("POST", "/partition?priority=1", kSpecBody));
  ASSERT_EQ(http_status(accepted), 202);
  const std::string body = http_body(accepted);
  const std::size_t at = body.find("\"id\": \"");
  ASSERT_NE(at, std::string::npos);
  const std::string id = body.substr(at + 7, 32);

  ASSERT_TRUE(eventually([&] { return gate.entered.load() == 1; }));
  const std::string running =
      http_exchange(daemon.port(), http_request("GET", "/jobs/" + id));
  EXPECT_EQ(http_status(running), 200);
  EXPECT_NE(http_body(running).find("\"state\": \"running\""),
            std::string::npos);

  const std::string cancelled =
      http_exchange(daemon.port(), http_request("DELETE", "/jobs/" + id));
  EXPECT_EQ(http_status(cancelled), 202);  // cooperative
  ASSERT_TRUE(eventually([&] {
    const std::string record =
        http_exchange(daemon.port(), http_request("GET", "/jobs/" + id));
    return http_body(record).find("\"state\": \"cancelled\"") !=
           std::string::npos;
  }));
  EXPECT_EQ(http_status(http_exchange(
                daemon.port(), http_request("GET", "/jobs/nonexistent"))),
            404);
  EXPECT_EQ(http_status(http_exchange(
                daemon.port(), http_request("PUT", "/jobs/" + id))),
            405);
  EXPECT_EQ(http_status(http_exchange(daemon.port(),
                                      http_request("GET", "/partition"))),
            405);
}

TEST(ServerHttp, TraceAndFlightRoutesOverRealSockets) {
  ServerConfig config = base_config();
  config.runner = traced_runner;
  LiveDaemon daemon(config);

  const std::string accepted =
      http_exchange(daemon.port(), http_request("POST", "/partition",
                                                kSpecBody));
  ASSERT_EQ(http_status(accepted), 202);
  const std::string body = http_body(accepted);
  const std::size_t at = body.find("\"id\": \"");
  ASSERT_NE(at, std::string::npos);
  const std::string id = body.substr(at + 7, 32);
  ASSERT_TRUE(
      eventually([&] { return daemon.server.done_total() == 1; }));

  const std::string trace = http_exchange(
      daemon.port(), http_request("GET", "/jobs/" + id + "/trace"));
  EXPECT_EQ(http_status(trace), 200);
  EXPECT_NE(http_body(trace).find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(http_body(trace).find("\"test.phase\""), std::string::npos);

  EXPECT_EQ(http_status(http_exchange(
                daemon.port(),
                http_request("GET", "/jobs/nonexistent/trace"))),
            404);
  EXPECT_EQ(http_status(http_exchange(
                daemon.port(),
                http_request("DELETE", "/jobs/" + id + "/trace"))),
            405);

  const std::string flight = http_exchange(
      daemon.port(), http_request("GET", "/debug/flight"));
  EXPECT_EQ(http_status(flight), 200);
  EXPECT_NE(http_body(flight).find("\"entries\""), std::string::npos);
  EXPECT_EQ(http_status(http_exchange(
                daemon.port(), http_request("POST", "/debug/flight"))),
            405);
}

TEST(ServerHttp, OverloadReturns429WithRetryAfterHeader) {
  Gate gate;
  ServerConfig config = base_config();
  config.queue_capacity = 1;
  config.runner = gated_runner(&gate);
  LiveDaemon daemon(config);

  ASSERT_EQ(http_status(http_exchange(
                daemon.port(),
                http_request("POST", "/partition", "{\"seed\": 1}"))),
            202);
  ASSERT_TRUE(eventually([&] { return gate.entered.load() == 1; }));
  ASSERT_EQ(http_status(http_exchange(
                daemon.port(),
                http_request("POST", "/partition", "{\"seed\": 2}"))),
            202);
  const std::string shed = http_exchange(
      daemon.port(), http_request("POST", "/partition", "{\"seed\": 3}"));
  EXPECT_EQ(http_status(shed), 429);
  EXPECT_NE(shed.find("Retry-After: "), std::string::npos);
  gate.release();
}

TEST(ServerHttp, TornChunkedUploadStillParses) {
  TempDir dir;
  ServerConfig config = base_config();
  config.spool_dir = dir.file("spool");
  LiveDaemon daemon(config);
  // 3-byte chunks with pauses: the server sees dozens of short reads
  // across the header/body boundary and must reassemble them all.
  const std::string response =
      http_exchange(daemon.port(), http_request("POST", "/partition", kUpload),
                    3, 1);
  EXPECT_EQ(http_status(response), 202);
  ASSERT_TRUE(
      eventually([&] { return daemon.server.done_total() == 1; }));
}

TEST(ServerHttp, SlowlorisClientIsCutOffNotServedForever) {
  LiveDaemon daemon(base_config(), /*io_timeout_seconds=*/0.3);
  const auto start = std::chrono::steady_clock::now();
  const int fd = fixedpart::testing::connect_loopback(daemon.port());
  ASSERT_GE(fd, 0);
  // Trickle a header that never completes; the per-connection budget must
  // cut us off instead of wedging the accept loop.
  fixedpart::testing::send_in_chunks(fd, "POST /partition HTTP/1.1\r\nHos",
                                     2, 50);
  const std::string response = fixedpart::testing::recv_all_fd(fd);
  ::close(fd);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(waited, 5.0);  // bounded by the budget, not the client
  if (!response.empty()) {
    EXPECT_EQ(http_status(response), 408);
  }
  // The endpoint is still alive for well-behaved clients afterwards.
  EXPECT_EQ(http_status(http_exchange(daemon.port(),
                                      http_request("GET", "/healthz"))),
            200);
}

TEST(ServerHttp, OversizedBodyIs413) {
  LiveDaemon daemon(base_config(), 5.0, /*max_request_bytes=*/512);
  const std::string big(4096, 'x');
  const std::string response = http_exchange(
      daemon.port(), http_request("POST", "/partition", big));
  EXPECT_EQ(http_status(response), 413);
  EXPECT_EQ(http_status(http_exchange(daemon.port(),
                                      http_request("GET", "/healthz"))),
            200);
}

TEST(ServerHttp, WorkerHangUnderLiveRequestsStaysResponsive) {
  Gate gate;  // never released: the single worker is wedged...
  ServerConfig config = base_config();
  config.hang_seconds = 0.0;  // ...and no watchdog will save it
  config.runner = gated_runner(&gate);
  LiveDaemon daemon(config);
  ASSERT_EQ(http_status(http_exchange(
                daemon.port(), http_request("POST", "/partition", kSpecBody))),
            202);
  ASSERT_TRUE(eventually([&] { return gate.entered.load() == 1; }));
  // Every control-plane route keeps answering while the worker hangs.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(http_status(http_exchange(daemon.port(),
                                        http_request("GET", "/progress"))),
              200);
    EXPECT_EQ(http_status(http_exchange(daemon.port(),
                                        http_request("GET", "/jobs"))),
              200);
    EXPECT_EQ(http_status(http_exchange(daemon.port(),
                                        http_request("GET", "/metrics"))),
              200);
  }
  gate.release();
}

#endif  // FIXEDPART_OBS_ENABLED && __unix__

}  // namespace
}  // namespace fixedpart::svc
