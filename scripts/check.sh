#!/usr/bin/env bash
# Verification matrix (docs/ROBUSTNESS.md "Sanitizer builds"): builds and
# tests the tree under every supported hardening configuration.
#
#   plain    default build, full ctest suite
#   asan     FIXEDPART_SANITIZE=address,undefined; the concurrency +
#            robustness labels, INCLUDING `isolate` (fork/exec process
#            pool) — the isolate battery is ASan-certified
#   tsan     FIXEDPART_SANITIZE=thread; the concurrency labels, but NOT
#            `isolate`: the process pool forks from a threaded process,
#            which TSan's runtime does not support
#   obsoff   FIXEDPART_OBS=OFF; full suite (HTTP/daemon E2Es trivially
#            pass, everything else must still build and run without the
#            observability layer)
#   large    plain build, `scale`-labeled tests only, with
#            FIXEDPART_LARGE_CELLS bumped to 1M (opt-in: not part of the
#            default matrix; sanitizer configs export
#            FIXEDPART_LARGE_SKIP=1 so RSS budgets never run under
#            shadow memory)
#
# Usage: scripts/check.sh [plain|asan|tsan|obsoff|large ...] (default:
# plain asan tsan obsoff)
# Build trees land in build-check-<config>/ at the repo root.
set -euo pipefail

repo=$(cd "$(dirname "$0")/.." && pwd)
jobs=$(nproc 2>/dev/null || echo 4)
configs=("$@")
[ ${#configs[@]} -gt 0 ] || configs=(plain asan tsan obsoff)

run_config() {
  local name=$1
  shift
  local cmake_args=("$@")
  local build_dir="$repo/build-check-$name"
  echo "=== [$name] configure: ${cmake_args[*]:-(defaults)}"
  cmake -S "$repo" -B "$build_dir" "${cmake_args[@]}" >/dev/null
  echo "=== [$name] build"
  cmake --build "$build_dir" -j "$jobs" >/dev/null
  echo "=== [$name] ctest ${ctest_args[*]}"
  ctest --test-dir "$build_dir" --output-on-failure -j "$jobs" \
    "${ctest_args[@]}"
}

for config in "${configs[@]}"; do
  case "$config" in
    plain)
      ctest_args=()
      run_config plain
      ;;
    asan)
      # `obs` is a ctest -L regex: it also matches obs-http. isolate is
      # deliberately in: the fork/exec supervision tree runs under ASan.
      ctest_args=(-L "fault|svc|obs|parallel|serve|isolate|trace")
      FIXEDPART_LARGE_SKIP=1 run_config asan \
        -DFIXEDPART_SANITIZE=address,undefined
      ;;
    tsan)
      # -LE isolate: the serve-labeled worker-crash E2E and the process
      # pool unit battery fork from threaded processes — unsupported
      # under TSan, certified under ASan instead.
      ctest_args=(-L "svc|obs|parallel|serve|trace" -LE isolate)
      FIXEDPART_LARGE_SKIP=1 run_config tsan -DFIXEDPART_SANITIZE=thread
      ;;
    large)
      # Million-vertex scale gate: the `scale` smoke at the committed
      # BENCH_LARGE size. Opt-in (scripts/check.sh large) — minutes of
      # wall clock and ~2.5 GB RSS budget.
      ctest_args=(-L scale)
      FIXEDPART_LARGE_CELLS=1000000 run_config large
      ;;
    obsoff)
      ctest_args=()
      run_config obsoff -DFIXEDPART_OBS=OFF
      ;;
    *)
      echo "unknown config: $config (want plain|asan|tsan|obsoff|large)" >&2
      exit 2
      ;;
  esac
done

echo "PASS: check matrix (${configs[*]})"
