# Empty compiler generated dependencies file for extension_multiway.
# This may be replaced when dependencies are built.
