file(REMOVE_RECURSE
  "../bench/extension_multiway"
  "../bench/extension_multiway.pdb"
  "CMakeFiles/extension_multiway.dir/extension_multiway.cpp.o"
  "CMakeFiles/extension_multiway.dir/extension_multiway.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_multiway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
