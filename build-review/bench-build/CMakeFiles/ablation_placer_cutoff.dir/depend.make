# Empty dependencies file for ablation_placer_cutoff.
# This may be replaced when dependencies are built.
