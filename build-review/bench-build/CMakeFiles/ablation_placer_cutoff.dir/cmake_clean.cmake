file(REMOVE_RECURSE
  "../bench/ablation_placer_cutoff"
  "../bench/ablation_placer_cutoff.pdb"
  "CMakeFiles/ablation_placer_cutoff.dir/ablation_placer_cutoff.cpp.o"
  "CMakeFiles/ablation_placer_cutoff.dir/ablation_placer_cutoff.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_placer_cutoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
