# Empty dependencies file for table3_pass_cutoff.
# This may be replaced when dependencies are built.
