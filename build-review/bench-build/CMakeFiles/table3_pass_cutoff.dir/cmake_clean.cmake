file(REMOVE_RECURSE
  "../bench/table3_pass_cutoff"
  "../bench/table3_pass_cutoff.pdb"
  "CMakeFiles/table3_pass_cutoff.dir/table3_pass_cutoff.cpp.o"
  "CMakeFiles/table3_pass_cutoff.dir/table3_pass_cutoff.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_pass_cutoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
