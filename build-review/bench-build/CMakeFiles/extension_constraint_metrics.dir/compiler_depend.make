# Empty compiler generated dependencies file for extension_constraint_metrics.
# This may be replaced when dependencies are built.
