file(REMOVE_RECURSE
  "../bench/extension_constraint_metrics"
  "../bench/extension_constraint_metrics.pdb"
  "CMakeFiles/extension_constraint_metrics.dir/extension_constraint_metrics.cpp.o"
  "CMakeFiles/extension_constraint_metrics.dir/extension_constraint_metrics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_constraint_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
