file(REMOVE_RECURSE
  "../bench/extension_multibalance"
  "../bench/extension_multibalance.pdb"
  "CMakeFiles/extension_multibalance.dir/extension_multibalance.cpp.o"
  "CMakeFiles/extension_multibalance.dir/extension_multibalance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_multibalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
