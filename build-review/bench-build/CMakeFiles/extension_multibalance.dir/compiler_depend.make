# Empty compiler generated dependencies file for extension_multibalance.
# This may be replaced when dependencies are built.
