# Empty compiler generated dependencies file for fig2_fixed_sweep_ibm03.
# This may be replaced when dependencies are built.
