# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig2_fixed_sweep_ibm03.
