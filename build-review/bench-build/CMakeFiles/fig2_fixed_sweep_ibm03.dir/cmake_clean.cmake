file(REMOVE_RECURSE
  "../bench/fig2_fixed_sweep_ibm03"
  "../bench/fig2_fixed_sweep_ibm03.pdb"
  "CMakeFiles/fig2_fixed_sweep_ibm03.dir/fig2_fixed_sweep_ibm03.cpp.o"
  "CMakeFiles/fig2_fixed_sweep_ibm03.dir/fig2_fixed_sweep_ibm03.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_fixed_sweep_ibm03.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
