file(REMOVE_RECURSE
  "../bench/extension_high_degree"
  "../bench/extension_high_degree.pdb"
  "CMakeFiles/extension_high_degree.dir/extension_high_degree.cpp.o"
  "CMakeFiles/extension_high_degree.dir/extension_high_degree.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_high_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
