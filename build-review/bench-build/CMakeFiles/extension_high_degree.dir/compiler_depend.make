# Empty compiler generated dependencies file for extension_high_degree.
# This may be replaced when dependencies are built.
