# Empty dependencies file for ablation_clip_vs_lifo.
# This may be replaced when dependencies are built.
