file(REMOVE_RECURSE
  "../bench/ablation_clip_vs_lifo"
  "../bench/ablation_clip_vs_lifo.pdb"
  "CMakeFiles/ablation_clip_vs_lifo.dir/ablation_clip_vs_lifo.cpp.o"
  "CMakeFiles/ablation_clip_vs_lifo.dir/ablation_clip_vs_lifo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_clip_vs_lifo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
