# Empty compiler generated dependencies file for table2_pass_stats.
# This may be replaced when dependencies are built.
