file(REMOVE_RECURSE
  "../bench/table2_pass_stats"
  "../bench/table2_pass_stats.pdb"
  "CMakeFiles/table2_pass_stats.dir/table2_pass_stats.cpp.o"
  "CMakeFiles/table2_pass_stats.dir/table2_pass_stats.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_pass_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
