file(REMOVE_RECURSE
  "../bench/table4_benchmarks"
  "../bench/table4_benchmarks.pdb"
  "CMakeFiles/table4_benchmarks.dir/table4_benchmarks.cpp.o"
  "CMakeFiles/table4_benchmarks.dir/table4_benchmarks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
