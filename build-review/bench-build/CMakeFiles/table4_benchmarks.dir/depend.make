# Empty dependencies file for table4_benchmarks.
# This may be replaced when dependencies are built.
