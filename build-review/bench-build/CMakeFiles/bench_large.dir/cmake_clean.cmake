file(REMOVE_RECURSE
  "../bench/bench_large"
  "../bench/bench_large.pdb"
  "CMakeFiles/bench_large.dir/bench_large.cpp.o"
  "CMakeFiles/bench_large.dir/bench_large.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
