# Empty compiler generated dependencies file for bench_large.
# This may be replaced when dependencies are built.
