# Empty compiler generated dependencies file for ablation_vcycle.
# This may be replaced when dependencies are built.
