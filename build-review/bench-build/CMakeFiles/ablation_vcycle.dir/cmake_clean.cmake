file(REMOVE_RECURSE
  "../bench/ablation_vcycle"
  "../bench/ablation_vcycle.pdb"
  "CMakeFiles/ablation_vcycle.dir/ablation_vcycle.cpp.o"
  "CMakeFiles/ablation_vcycle.dir/ablation_vcycle.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vcycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
