# Empty dependencies file for bench_to_json.
# This may be replaced when dependencies are built.
