file(REMOVE_RECURSE
  "../bench/bench_to_json"
  "../bench/bench_to_json.pdb"
  "CMakeFiles/bench_to_json.dir/bench_to_json.cpp.o"
  "CMakeFiles/bench_to_json.dir/bench_to_json.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_to_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
