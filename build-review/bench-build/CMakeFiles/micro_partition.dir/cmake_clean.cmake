file(REMOVE_RECURSE
  "../bench/micro_partition"
  "../bench/micro_partition.pdb"
  "CMakeFiles/micro_partition.dir/micro_partition.cpp.o"
  "CMakeFiles/micro_partition.dir/micro_partition.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
