# Empty compiler generated dependencies file for micro_partition.
# This may be replaced when dependencies are built.
