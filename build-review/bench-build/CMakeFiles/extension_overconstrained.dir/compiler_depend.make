# Empty compiler generated dependencies file for extension_overconstrained.
# This may be replaced when dependencies are built.
