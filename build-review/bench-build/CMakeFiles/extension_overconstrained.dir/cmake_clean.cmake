file(REMOVE_RECURSE
  "../bench/extension_overconstrained"
  "../bench/extension_overconstrained.pdb"
  "CMakeFiles/extension_overconstrained.dir/extension_overconstrained.cpp.o"
  "CMakeFiles/extension_overconstrained.dir/extension_overconstrained.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_overconstrained.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
