file(REMOVE_RECURSE
  "../bench/table1_rent"
  "../bench/table1_rent.pdb"
  "CMakeFiles/table1_rent.dir/table1_rent.cpp.o"
  "CMakeFiles/table1_rent.dir/table1_rent.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_rent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
