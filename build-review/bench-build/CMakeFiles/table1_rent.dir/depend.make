# Empty dependencies file for table1_rent.
# This may be replaced when dependencies are built.
