file(REMOVE_RECURSE
  "../bench/ablation_terminal_clustering"
  "../bench/ablation_terminal_clustering.pdb"
  "CMakeFiles/ablation_terminal_clustering.dir/ablation_terminal_clustering.cpp.o"
  "CMakeFiles/ablation_terminal_clustering.dir/ablation_terminal_clustering.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_terminal_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
