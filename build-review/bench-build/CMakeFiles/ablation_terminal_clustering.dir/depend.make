# Empty dependencies file for ablation_terminal_clustering.
# This may be replaced when dependencies are built.
