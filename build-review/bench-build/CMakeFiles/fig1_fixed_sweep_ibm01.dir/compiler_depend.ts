# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig1_fixed_sweep_ibm01.
