# Empty dependencies file for fig1_fixed_sweep_ibm01.
# This may be replaced when dependencies are built.
