file(REMOVE_RECURSE
  "../bench/fig1_fixed_sweep_ibm01"
  "../bench/fig1_fixed_sweep_ibm01.pdb"
  "CMakeFiles/fig1_fixed_sweep_ibm01.dir/fig1_fixed_sweep_ibm01.cpp.o"
  "CMakeFiles/fig1_fixed_sweep_ibm01.dir/fig1_fixed_sweep_ibm01.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_fixed_sweep_ibm01.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
