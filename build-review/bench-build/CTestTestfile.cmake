# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build-review/bench-build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(large_scale_smoke "bash" "/root/repo/tests/large_scale.sh" "/root/repo/build-review/bench/bench_large")
set_tests_properties(large_scale_smoke PROPERTIES  LABELS "scale" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;36;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke "/root/repo/build-review/bench/bench_to_json" "--smoke" "--out=/root/repo/build-review/bench-build/bench_smoke.json")
set_tests_properties(bench_smoke PROPERTIES  LABELS "bench-smoke" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_metrics_scrape "bash" "/root/repo/tests/bench_metrics_scrape.sh" "/root/repo/build-review/bench/bench_to_json")
set_tests_properties(bench_metrics_scrape PROPERTIES  LABELS "bench-smoke;obs" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;51;add_test;/root/repo/bench/CMakeLists.txt;0;")
