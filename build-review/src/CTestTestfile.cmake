# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("obs")
subdirs("hg")
subdirs("part")
subdirs("ml")
subdirs("svc")
subdirs("place")
subdirs("gen")
subdirs("experiments")
