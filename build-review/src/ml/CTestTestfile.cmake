# CMake generated Testfile for 
# Source directory: /root/repo/src/ml
# Build directory: /root/repo/build-review/src/ml
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
