
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/coarsen.cpp" "src/ml/CMakeFiles/fp_ml.dir/coarsen.cpp.o" "gcc" "src/ml/CMakeFiles/fp_ml.dir/coarsen.cpp.o.d"
  "/root/repo/src/ml/matching.cpp" "src/ml/CMakeFiles/fp_ml.dir/matching.cpp.o" "gcc" "src/ml/CMakeFiles/fp_ml.dir/matching.cpp.o.d"
  "/root/repo/src/ml/multilevel.cpp" "src/ml/CMakeFiles/fp_ml.dir/multilevel.cpp.o" "gcc" "src/ml/CMakeFiles/fp_ml.dir/multilevel.cpp.o.d"
  "/root/repo/src/ml/parallel.cpp" "src/ml/CMakeFiles/fp_ml.dir/parallel.cpp.o" "gcc" "src/ml/CMakeFiles/fp_ml.dir/parallel.cpp.o.d"
  "/root/repo/src/ml/recursive_bisection.cpp" "src/ml/CMakeFiles/fp_ml.dir/recursive_bisection.cpp.o" "gcc" "src/ml/CMakeFiles/fp_ml.dir/recursive_bisection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/part/CMakeFiles/fp_part.dir/DependInfo.cmake"
  "/root/repo/build-review/src/hg/CMakeFiles/fp_hg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/fp_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/fp_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
