file(REMOVE_RECURSE
  "libfp_ml.a"
)
