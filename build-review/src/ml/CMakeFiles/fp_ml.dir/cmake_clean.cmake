file(REMOVE_RECURSE
  "CMakeFiles/fp_ml.dir/coarsen.cpp.o"
  "CMakeFiles/fp_ml.dir/coarsen.cpp.o.d"
  "CMakeFiles/fp_ml.dir/matching.cpp.o"
  "CMakeFiles/fp_ml.dir/matching.cpp.o.d"
  "CMakeFiles/fp_ml.dir/multilevel.cpp.o"
  "CMakeFiles/fp_ml.dir/multilevel.cpp.o.d"
  "CMakeFiles/fp_ml.dir/parallel.cpp.o"
  "CMakeFiles/fp_ml.dir/parallel.cpp.o.d"
  "CMakeFiles/fp_ml.dir/recursive_bisection.cpp.o"
  "CMakeFiles/fp_ml.dir/recursive_bisection.cpp.o.d"
  "libfp_ml.a"
  "libfp_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
