# Empty compiler generated dependencies file for fp_ml.
# This may be replaced when dependencies are built.
