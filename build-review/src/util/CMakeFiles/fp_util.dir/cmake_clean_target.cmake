file(REMOVE_RECURSE
  "libfp_util.a"
)
