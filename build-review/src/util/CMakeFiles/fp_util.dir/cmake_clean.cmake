file(REMOVE_RECURSE
  "CMakeFiles/fp_util.dir/atomic_file.cpp.o"
  "CMakeFiles/fp_util.dir/atomic_file.cpp.o.d"
  "CMakeFiles/fp_util.dir/cli.cpp.o"
  "CMakeFiles/fp_util.dir/cli.cpp.o.d"
  "CMakeFiles/fp_util.dir/env.cpp.o"
  "CMakeFiles/fp_util.dir/env.cpp.o.d"
  "CMakeFiles/fp_util.dir/errors.cpp.o"
  "CMakeFiles/fp_util.dir/errors.cpp.o.d"
  "CMakeFiles/fp_util.dir/line_reader.cpp.o"
  "CMakeFiles/fp_util.dir/line_reader.cpp.o.d"
  "CMakeFiles/fp_util.dir/mem.cpp.o"
  "CMakeFiles/fp_util.dir/mem.cpp.o.d"
  "CMakeFiles/fp_util.dir/rng.cpp.o"
  "CMakeFiles/fp_util.dir/rng.cpp.o.d"
  "CMakeFiles/fp_util.dir/stats.cpp.o"
  "CMakeFiles/fp_util.dir/stats.cpp.o.d"
  "CMakeFiles/fp_util.dir/subprocess.cpp.o"
  "CMakeFiles/fp_util.dir/subprocess.cpp.o.d"
  "CMakeFiles/fp_util.dir/table.cpp.o"
  "CMakeFiles/fp_util.dir/table.cpp.o.d"
  "CMakeFiles/fp_util.dir/thread_pool.cpp.o"
  "CMakeFiles/fp_util.dir/thread_pool.cpp.o.d"
  "libfp_util.a"
  "libfp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
