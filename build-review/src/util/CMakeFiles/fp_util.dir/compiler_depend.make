# Empty compiler generated dependencies file for fp_util.
# This may be replaced when dependencies are built.
