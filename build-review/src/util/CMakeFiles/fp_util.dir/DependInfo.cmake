
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/atomic_file.cpp" "src/util/CMakeFiles/fp_util.dir/atomic_file.cpp.o" "gcc" "src/util/CMakeFiles/fp_util.dir/atomic_file.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/util/CMakeFiles/fp_util.dir/cli.cpp.o" "gcc" "src/util/CMakeFiles/fp_util.dir/cli.cpp.o.d"
  "/root/repo/src/util/env.cpp" "src/util/CMakeFiles/fp_util.dir/env.cpp.o" "gcc" "src/util/CMakeFiles/fp_util.dir/env.cpp.o.d"
  "/root/repo/src/util/errors.cpp" "src/util/CMakeFiles/fp_util.dir/errors.cpp.o" "gcc" "src/util/CMakeFiles/fp_util.dir/errors.cpp.o.d"
  "/root/repo/src/util/line_reader.cpp" "src/util/CMakeFiles/fp_util.dir/line_reader.cpp.o" "gcc" "src/util/CMakeFiles/fp_util.dir/line_reader.cpp.o.d"
  "/root/repo/src/util/mem.cpp" "src/util/CMakeFiles/fp_util.dir/mem.cpp.o" "gcc" "src/util/CMakeFiles/fp_util.dir/mem.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/util/CMakeFiles/fp_util.dir/rng.cpp.o" "gcc" "src/util/CMakeFiles/fp_util.dir/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/util/CMakeFiles/fp_util.dir/stats.cpp.o" "gcc" "src/util/CMakeFiles/fp_util.dir/stats.cpp.o.d"
  "/root/repo/src/util/subprocess.cpp" "src/util/CMakeFiles/fp_util.dir/subprocess.cpp.o" "gcc" "src/util/CMakeFiles/fp_util.dir/subprocess.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/util/CMakeFiles/fp_util.dir/table.cpp.o" "gcc" "src/util/CMakeFiles/fp_util.dir/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/util/CMakeFiles/fp_util.dir/thread_pool.cpp.o" "gcc" "src/util/CMakeFiles/fp_util.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
