src/util/CMakeFiles/fp_util.dir/mem.cpp.o: /root/repo/src/util/mem.cpp \
 /usr/include/stdc-predef.h /root/repo/src/util/mem.hpp \
 /usr/include/c++/12/cstdint \
 /usr/include/x86_64-linux-gnu/c++/12/bits/c++config.h \
 /usr/include/x86_64-linux-gnu/c++/12/bits/os_defines.h \
 /usr/include/features.h /usr/include/features-time64.h \
 /usr/include/x86_64-linux-gnu/bits/wordsize.h \
 /usr/include/x86_64-linux-gnu/bits/timesize.h \
 /usr/include/x86_64-linux-gnu/sys/cdefs.h \
 /usr/include/x86_64-linux-gnu/bits/long-double.h \
 /usr/include/x86_64-linux-gnu/gnu/stubs.h \
 /usr/include/x86_64-linux-gnu/gnu/stubs-64.h \
 /usr/include/x86_64-linux-gnu/c++/12/bits/cpu_defines.h \
 /usr/include/c++/12/pstl/pstl_config.h \
 /usr/lib/gcc/x86_64-linux-gnu/12/include/stdint.h /usr/include/stdint.h \
 /usr/include/x86_64-linux-gnu/bits/libc-header-start.h \
 /usr/include/x86_64-linux-gnu/bits/types.h \
 /usr/include/x86_64-linux-gnu/bits/typesizes.h \
 /usr/include/x86_64-linux-gnu/bits/time64.h \
 /usr/include/x86_64-linux-gnu/bits/wchar.h \
 /usr/include/x86_64-linux-gnu/bits/stdint-intn.h \
 /usr/include/x86_64-linux-gnu/bits/stdint-uintn.h \
 /usr/include/x86_64-linux-gnu/sys/resource.h \
 /usr/include/x86_64-linux-gnu/bits/resource.h \
 /usr/include/x86_64-linux-gnu/bits/types/struct_timeval.h \
 /usr/include/x86_64-linux-gnu/bits/types/struct_rusage.h
