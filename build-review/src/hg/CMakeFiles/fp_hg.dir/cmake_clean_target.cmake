file(REMOVE_RECURSE
  "libfp_hg.a"
)
