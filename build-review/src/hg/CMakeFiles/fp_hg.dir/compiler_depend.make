# Empty compiler generated dependencies file for fp_hg.
# This may be replaced when dependencies are built.
