file(REMOVE_RECURSE
  "CMakeFiles/fp_hg.dir/builder.cpp.o"
  "CMakeFiles/fp_hg.dir/builder.cpp.o.d"
  "CMakeFiles/fp_hg.dir/fixed.cpp.o"
  "CMakeFiles/fp_hg.dir/fixed.cpp.o.d"
  "CMakeFiles/fp_hg.dir/hypergraph.cpp.o"
  "CMakeFiles/fp_hg.dir/hypergraph.cpp.o.d"
  "CMakeFiles/fp_hg.dir/io_binary.cpp.o"
  "CMakeFiles/fp_hg.dir/io_binary.cpp.o.d"
  "CMakeFiles/fp_hg.dir/io_bookshelf.cpp.o"
  "CMakeFiles/fp_hg.dir/io_bookshelf.cpp.o.d"
  "CMakeFiles/fp_hg.dir/io_hmetis.cpp.o"
  "CMakeFiles/fp_hg.dir/io_hmetis.cpp.o.d"
  "CMakeFiles/fp_hg.dir/io_netare.cpp.o"
  "CMakeFiles/fp_hg.dir/io_netare.cpp.o.d"
  "CMakeFiles/fp_hg.dir/io_solution.cpp.o"
  "CMakeFiles/fp_hg.dir/io_solution.cpp.o.d"
  "CMakeFiles/fp_hg.dir/stats.cpp.o"
  "CMakeFiles/fp_hg.dir/stats.cpp.o.d"
  "CMakeFiles/fp_hg.dir/subgraph.cpp.o"
  "CMakeFiles/fp_hg.dir/subgraph.cpp.o.d"
  "CMakeFiles/fp_hg.dir/transform.cpp.o"
  "CMakeFiles/fp_hg.dir/transform.cpp.o.d"
  "libfp_hg.a"
  "libfp_hg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_hg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
