
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hg/builder.cpp" "src/hg/CMakeFiles/fp_hg.dir/builder.cpp.o" "gcc" "src/hg/CMakeFiles/fp_hg.dir/builder.cpp.o.d"
  "/root/repo/src/hg/fixed.cpp" "src/hg/CMakeFiles/fp_hg.dir/fixed.cpp.o" "gcc" "src/hg/CMakeFiles/fp_hg.dir/fixed.cpp.o.d"
  "/root/repo/src/hg/hypergraph.cpp" "src/hg/CMakeFiles/fp_hg.dir/hypergraph.cpp.o" "gcc" "src/hg/CMakeFiles/fp_hg.dir/hypergraph.cpp.o.d"
  "/root/repo/src/hg/io_binary.cpp" "src/hg/CMakeFiles/fp_hg.dir/io_binary.cpp.o" "gcc" "src/hg/CMakeFiles/fp_hg.dir/io_binary.cpp.o.d"
  "/root/repo/src/hg/io_bookshelf.cpp" "src/hg/CMakeFiles/fp_hg.dir/io_bookshelf.cpp.o" "gcc" "src/hg/CMakeFiles/fp_hg.dir/io_bookshelf.cpp.o.d"
  "/root/repo/src/hg/io_hmetis.cpp" "src/hg/CMakeFiles/fp_hg.dir/io_hmetis.cpp.o" "gcc" "src/hg/CMakeFiles/fp_hg.dir/io_hmetis.cpp.o.d"
  "/root/repo/src/hg/io_netare.cpp" "src/hg/CMakeFiles/fp_hg.dir/io_netare.cpp.o" "gcc" "src/hg/CMakeFiles/fp_hg.dir/io_netare.cpp.o.d"
  "/root/repo/src/hg/io_solution.cpp" "src/hg/CMakeFiles/fp_hg.dir/io_solution.cpp.o" "gcc" "src/hg/CMakeFiles/fp_hg.dir/io_solution.cpp.o.d"
  "/root/repo/src/hg/stats.cpp" "src/hg/CMakeFiles/fp_hg.dir/stats.cpp.o" "gcc" "src/hg/CMakeFiles/fp_hg.dir/stats.cpp.o.d"
  "/root/repo/src/hg/subgraph.cpp" "src/hg/CMakeFiles/fp_hg.dir/subgraph.cpp.o" "gcc" "src/hg/CMakeFiles/fp_hg.dir/subgraph.cpp.o.d"
  "/root/repo/src/hg/transform.cpp" "src/hg/CMakeFiles/fp_hg.dir/transform.cpp.o" "gcc" "src/hg/CMakeFiles/fp_hg.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/fp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
