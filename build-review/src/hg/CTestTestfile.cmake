# CMake generated Testfile for 
# Source directory: /root/repo/src/hg
# Build directory: /root/repo/build-review/src/hg
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
