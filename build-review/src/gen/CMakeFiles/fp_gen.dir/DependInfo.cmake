
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/derive.cpp" "src/gen/CMakeFiles/fp_gen.dir/derive.cpp.o" "gcc" "src/gen/CMakeFiles/fp_gen.dir/derive.cpp.o.d"
  "/root/repo/src/gen/netlist_gen.cpp" "src/gen/CMakeFiles/fp_gen.dir/netlist_gen.cpp.o" "gcc" "src/gen/CMakeFiles/fp_gen.dir/netlist_gen.cpp.o.d"
  "/root/repo/src/gen/regimes.cpp" "src/gen/CMakeFiles/fp_gen.dir/regimes.cpp.o" "gcc" "src/gen/CMakeFiles/fp_gen.dir/regimes.cpp.o.d"
  "/root/repo/src/gen/rent.cpp" "src/gen/CMakeFiles/fp_gen.dir/rent.cpp.o" "gcc" "src/gen/CMakeFiles/fp_gen.dir/rent.cpp.o.d"
  "/root/repo/src/gen/rent_fit.cpp" "src/gen/CMakeFiles/fp_gen.dir/rent_fit.cpp.o" "gcc" "src/gen/CMakeFiles/fp_gen.dir/rent_fit.cpp.o.d"
  "/root/repo/src/gen/stream_gen.cpp" "src/gen/CMakeFiles/fp_gen.dir/stream_gen.cpp.o" "gcc" "src/gen/CMakeFiles/fp_gen.dir/stream_gen.cpp.o.d"
  "/root/repo/src/gen/suite.cpp" "src/gen/CMakeFiles/fp_gen.dir/suite.cpp.o" "gcc" "src/gen/CMakeFiles/fp_gen.dir/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/hg/CMakeFiles/fp_hg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/fp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
