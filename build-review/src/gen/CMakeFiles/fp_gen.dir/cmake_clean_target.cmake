file(REMOVE_RECURSE
  "libfp_gen.a"
)
