file(REMOVE_RECURSE
  "CMakeFiles/fp_gen.dir/derive.cpp.o"
  "CMakeFiles/fp_gen.dir/derive.cpp.o.d"
  "CMakeFiles/fp_gen.dir/netlist_gen.cpp.o"
  "CMakeFiles/fp_gen.dir/netlist_gen.cpp.o.d"
  "CMakeFiles/fp_gen.dir/regimes.cpp.o"
  "CMakeFiles/fp_gen.dir/regimes.cpp.o.d"
  "CMakeFiles/fp_gen.dir/rent.cpp.o"
  "CMakeFiles/fp_gen.dir/rent.cpp.o.d"
  "CMakeFiles/fp_gen.dir/rent_fit.cpp.o"
  "CMakeFiles/fp_gen.dir/rent_fit.cpp.o.d"
  "CMakeFiles/fp_gen.dir/stream_gen.cpp.o"
  "CMakeFiles/fp_gen.dir/stream_gen.cpp.o.d"
  "CMakeFiles/fp_gen.dir/suite.cpp.o"
  "CMakeFiles/fp_gen.dir/suite.cpp.o.d"
  "libfp_gen.a"
  "libfp_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
