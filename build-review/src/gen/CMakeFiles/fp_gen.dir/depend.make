# Empty dependencies file for fp_gen.
# This may be replaced when dependencies are built.
