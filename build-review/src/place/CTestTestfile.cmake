# CMake generated Testfile for 
# Source directory: /root/repo/src/place
# Build directory: /root/repo/build-review/src/place
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
