file(REMOVE_RECURSE
  "CMakeFiles/fp_place.dir/hpwl.cpp.o"
  "CMakeFiles/fp_place.dir/hpwl.cpp.o.d"
  "CMakeFiles/fp_place.dir/placer.cpp.o"
  "CMakeFiles/fp_place.dir/placer.cpp.o.d"
  "libfp_place.a"
  "libfp_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
