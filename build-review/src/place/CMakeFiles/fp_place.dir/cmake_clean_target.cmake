file(REMOVE_RECURSE
  "libfp_place.a"
)
