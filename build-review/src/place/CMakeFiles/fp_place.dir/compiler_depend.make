# Empty compiler generated dependencies file for fp_place.
# This may be replaced when dependencies are built.
