# CMake generated Testfile for 
# Source directory: /root/repo/src/svc
# Build directory: /root/repo/build-review/src/svc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
