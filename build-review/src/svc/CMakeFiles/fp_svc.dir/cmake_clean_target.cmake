file(REMOVE_RECURSE
  "libfp_svc.a"
)
