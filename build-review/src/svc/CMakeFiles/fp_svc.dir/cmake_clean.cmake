file(REMOVE_RECURSE
  "CMakeFiles/fp_svc.dir/checkpoint.cpp.o"
  "CMakeFiles/fp_svc.dir/checkpoint.cpp.o.d"
  "CMakeFiles/fp_svc.dir/executor.cpp.o"
  "CMakeFiles/fp_svc.dir/executor.cpp.o.d"
  "CMakeFiles/fp_svc.dir/job.cpp.o"
  "CMakeFiles/fp_svc.dir/job.cpp.o.d"
  "CMakeFiles/fp_svc.dir/process_pool.cpp.o"
  "CMakeFiles/fp_svc.dir/process_pool.cpp.o.d"
  "CMakeFiles/fp_svc.dir/server.cpp.o"
  "CMakeFiles/fp_svc.dir/server.cpp.o.d"
  "libfp_svc.a"
  "libfp_svc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_svc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
