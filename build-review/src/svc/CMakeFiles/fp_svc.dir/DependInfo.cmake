
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/svc/checkpoint.cpp" "src/svc/CMakeFiles/fp_svc.dir/checkpoint.cpp.o" "gcc" "src/svc/CMakeFiles/fp_svc.dir/checkpoint.cpp.o.d"
  "/root/repo/src/svc/executor.cpp" "src/svc/CMakeFiles/fp_svc.dir/executor.cpp.o" "gcc" "src/svc/CMakeFiles/fp_svc.dir/executor.cpp.o.d"
  "/root/repo/src/svc/job.cpp" "src/svc/CMakeFiles/fp_svc.dir/job.cpp.o" "gcc" "src/svc/CMakeFiles/fp_svc.dir/job.cpp.o.d"
  "/root/repo/src/svc/process_pool.cpp" "src/svc/CMakeFiles/fp_svc.dir/process_pool.cpp.o" "gcc" "src/svc/CMakeFiles/fp_svc.dir/process_pool.cpp.o.d"
  "/root/repo/src/svc/server.cpp" "src/svc/CMakeFiles/fp_svc.dir/server.cpp.o" "gcc" "src/svc/CMakeFiles/fp_svc.dir/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/ml/CMakeFiles/fp_ml.dir/DependInfo.cmake"
  "/root/repo/build-review/src/gen/CMakeFiles/fp_gen.dir/DependInfo.cmake"
  "/root/repo/build-review/src/part/CMakeFiles/fp_part.dir/DependInfo.cmake"
  "/root/repo/build-review/src/hg/CMakeFiles/fp_hg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/fp_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/fp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
