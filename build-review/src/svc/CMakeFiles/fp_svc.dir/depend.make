# Empty dependencies file for fp_svc.
# This may be replaced when dependencies are built.
