
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/obs/exporter.cpp" "src/obs/CMakeFiles/fp_obs.dir/exporter.cpp.o" "gcc" "src/obs/CMakeFiles/fp_obs.dir/exporter.cpp.o.d"
  "/root/repo/src/obs/exposition.cpp" "src/obs/CMakeFiles/fp_obs.dir/exposition.cpp.o" "gcc" "src/obs/CMakeFiles/fp_obs.dir/exposition.cpp.o.d"
  "/root/repo/src/obs/flight.cpp" "src/obs/CMakeFiles/fp_obs.dir/flight.cpp.o" "gcc" "src/obs/CMakeFiles/fp_obs.dir/flight.cpp.o.d"
  "/root/repo/src/obs/http.cpp" "src/obs/CMakeFiles/fp_obs.dir/http.cpp.o" "gcc" "src/obs/CMakeFiles/fp_obs.dir/http.cpp.o.d"
  "/root/repo/src/obs/log.cpp" "src/obs/CMakeFiles/fp_obs.dir/log.cpp.o" "gcc" "src/obs/CMakeFiles/fp_obs.dir/log.cpp.o.d"
  "/root/repo/src/obs/registry.cpp" "src/obs/CMakeFiles/fp_obs.dir/registry.cpp.o" "gcc" "src/obs/CMakeFiles/fp_obs.dir/registry.cpp.o.d"
  "/root/repo/src/obs/trace.cpp" "src/obs/CMakeFiles/fp_obs.dir/trace.cpp.o" "gcc" "src/obs/CMakeFiles/fp_obs.dir/trace.cpp.o.d"
  "/root/repo/src/obs/trace_wire.cpp" "src/obs/CMakeFiles/fp_obs.dir/trace_wire.cpp.o" "gcc" "src/obs/CMakeFiles/fp_obs.dir/trace_wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/fp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
