# Empty dependencies file for fp_obs.
# This may be replaced when dependencies are built.
