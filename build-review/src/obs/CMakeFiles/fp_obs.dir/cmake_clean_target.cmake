file(REMOVE_RECURSE
  "libfp_obs.a"
)
