file(REMOVE_RECURSE
  "CMakeFiles/fp_obs.dir/exporter.cpp.o"
  "CMakeFiles/fp_obs.dir/exporter.cpp.o.d"
  "CMakeFiles/fp_obs.dir/exposition.cpp.o"
  "CMakeFiles/fp_obs.dir/exposition.cpp.o.d"
  "CMakeFiles/fp_obs.dir/flight.cpp.o"
  "CMakeFiles/fp_obs.dir/flight.cpp.o.d"
  "CMakeFiles/fp_obs.dir/http.cpp.o"
  "CMakeFiles/fp_obs.dir/http.cpp.o.d"
  "CMakeFiles/fp_obs.dir/log.cpp.o"
  "CMakeFiles/fp_obs.dir/log.cpp.o.d"
  "CMakeFiles/fp_obs.dir/registry.cpp.o"
  "CMakeFiles/fp_obs.dir/registry.cpp.o.d"
  "CMakeFiles/fp_obs.dir/trace.cpp.o"
  "CMakeFiles/fp_obs.dir/trace.cpp.o.d"
  "CMakeFiles/fp_obs.dir/trace_wire.cpp.o"
  "CMakeFiles/fp_obs.dir/trace_wire.cpp.o.d"
  "libfp_obs.a"
  "libfp_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
