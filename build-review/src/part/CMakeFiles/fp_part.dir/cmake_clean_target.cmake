file(REMOVE_RECURSE
  "libfp_part.a"
)
