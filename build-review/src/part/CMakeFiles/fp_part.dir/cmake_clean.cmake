file(REMOVE_RECURSE
  "CMakeFiles/fp_part.dir/balance.cpp.o"
  "CMakeFiles/fp_part.dir/balance.cpp.o.d"
  "CMakeFiles/fp_part.dir/exact.cpp.o"
  "CMakeFiles/fp_part.dir/exact.cpp.o.d"
  "CMakeFiles/fp_part.dir/feasibility.cpp.o"
  "CMakeFiles/fp_part.dir/feasibility.cpp.o.d"
  "CMakeFiles/fp_part.dir/fm.cpp.o"
  "CMakeFiles/fp_part.dir/fm.cpp.o.d"
  "CMakeFiles/fp_part.dir/gain_buckets.cpp.o"
  "CMakeFiles/fp_part.dir/gain_buckets.cpp.o.d"
  "CMakeFiles/fp_part.dir/initial.cpp.o"
  "CMakeFiles/fp_part.dir/initial.cpp.o.d"
  "CMakeFiles/fp_part.dir/kway_fm.cpp.o"
  "CMakeFiles/fp_part.dir/kway_fm.cpp.o.d"
  "CMakeFiles/fp_part.dir/pairwise.cpp.o"
  "CMakeFiles/fp_part.dir/pairwise.cpp.o.d"
  "CMakeFiles/fp_part.dir/partition.cpp.o"
  "CMakeFiles/fp_part.dir/partition.cpp.o.d"
  "CMakeFiles/fp_part.dir/report.cpp.o"
  "CMakeFiles/fp_part.dir/report.cpp.o.d"
  "libfp_part.a"
  "libfp_part.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_part.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
