# Empty compiler generated dependencies file for fp_part.
# This may be replaced when dependencies are built.
