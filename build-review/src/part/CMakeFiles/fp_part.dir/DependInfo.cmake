
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/part/balance.cpp" "src/part/CMakeFiles/fp_part.dir/balance.cpp.o" "gcc" "src/part/CMakeFiles/fp_part.dir/balance.cpp.o.d"
  "/root/repo/src/part/exact.cpp" "src/part/CMakeFiles/fp_part.dir/exact.cpp.o" "gcc" "src/part/CMakeFiles/fp_part.dir/exact.cpp.o.d"
  "/root/repo/src/part/feasibility.cpp" "src/part/CMakeFiles/fp_part.dir/feasibility.cpp.o" "gcc" "src/part/CMakeFiles/fp_part.dir/feasibility.cpp.o.d"
  "/root/repo/src/part/fm.cpp" "src/part/CMakeFiles/fp_part.dir/fm.cpp.o" "gcc" "src/part/CMakeFiles/fp_part.dir/fm.cpp.o.d"
  "/root/repo/src/part/gain_buckets.cpp" "src/part/CMakeFiles/fp_part.dir/gain_buckets.cpp.o" "gcc" "src/part/CMakeFiles/fp_part.dir/gain_buckets.cpp.o.d"
  "/root/repo/src/part/initial.cpp" "src/part/CMakeFiles/fp_part.dir/initial.cpp.o" "gcc" "src/part/CMakeFiles/fp_part.dir/initial.cpp.o.d"
  "/root/repo/src/part/kway_fm.cpp" "src/part/CMakeFiles/fp_part.dir/kway_fm.cpp.o" "gcc" "src/part/CMakeFiles/fp_part.dir/kway_fm.cpp.o.d"
  "/root/repo/src/part/pairwise.cpp" "src/part/CMakeFiles/fp_part.dir/pairwise.cpp.o" "gcc" "src/part/CMakeFiles/fp_part.dir/pairwise.cpp.o.d"
  "/root/repo/src/part/partition.cpp" "src/part/CMakeFiles/fp_part.dir/partition.cpp.o" "gcc" "src/part/CMakeFiles/fp_part.dir/partition.cpp.o.d"
  "/root/repo/src/part/report.cpp" "src/part/CMakeFiles/fp_part.dir/report.cpp.o" "gcc" "src/part/CMakeFiles/fp_part.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/hg/CMakeFiles/fp_hg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/fp_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/fp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
