file(REMOVE_RECURSE
  "CMakeFiles/fp_experiments.dir/constraint_metrics.cpp.o"
  "CMakeFiles/fp_experiments.dir/constraint_metrics.cpp.o.d"
  "CMakeFiles/fp_experiments.dir/context.cpp.o"
  "CMakeFiles/fp_experiments.dir/context.cpp.o.d"
  "CMakeFiles/fp_experiments.dir/derive_report.cpp.o"
  "CMakeFiles/fp_experiments.dir/derive_report.cpp.o.d"
  "CMakeFiles/fp_experiments.dir/fixed_sweep.cpp.o"
  "CMakeFiles/fp_experiments.dir/fixed_sweep.cpp.o.d"
  "CMakeFiles/fp_experiments.dir/pass_experiments.cpp.o"
  "CMakeFiles/fp_experiments.dir/pass_experiments.cpp.o.d"
  "libfp_experiments.a"
  "libfp_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
