
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/experiments/constraint_metrics.cpp" "src/experiments/CMakeFiles/fp_experiments.dir/constraint_metrics.cpp.o" "gcc" "src/experiments/CMakeFiles/fp_experiments.dir/constraint_metrics.cpp.o.d"
  "/root/repo/src/experiments/context.cpp" "src/experiments/CMakeFiles/fp_experiments.dir/context.cpp.o" "gcc" "src/experiments/CMakeFiles/fp_experiments.dir/context.cpp.o.d"
  "/root/repo/src/experiments/derive_report.cpp" "src/experiments/CMakeFiles/fp_experiments.dir/derive_report.cpp.o" "gcc" "src/experiments/CMakeFiles/fp_experiments.dir/derive_report.cpp.o.d"
  "/root/repo/src/experiments/fixed_sweep.cpp" "src/experiments/CMakeFiles/fp_experiments.dir/fixed_sweep.cpp.o" "gcc" "src/experiments/CMakeFiles/fp_experiments.dir/fixed_sweep.cpp.o.d"
  "/root/repo/src/experiments/pass_experiments.cpp" "src/experiments/CMakeFiles/fp_experiments.dir/pass_experiments.cpp.o" "gcc" "src/experiments/CMakeFiles/fp_experiments.dir/pass_experiments.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/svc/CMakeFiles/fp_svc.dir/DependInfo.cmake"
  "/root/repo/build-review/src/gen/CMakeFiles/fp_gen.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ml/CMakeFiles/fp_ml.dir/DependInfo.cmake"
  "/root/repo/build-review/src/part/CMakeFiles/fp_part.dir/DependInfo.cmake"
  "/root/repo/build-review/src/hg/CMakeFiles/fp_hg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/fp_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/fp_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
