file(REMOVE_RECURSE
  "libfp_experiments.a"
)
