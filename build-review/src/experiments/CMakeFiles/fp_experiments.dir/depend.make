# Empty dependencies file for fp_experiments.
# This may be replaced when dependencies are built.
