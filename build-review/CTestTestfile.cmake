# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-review
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("src")
subdirs("tests")
subdirs("bench-build")
subdirs("examples")
