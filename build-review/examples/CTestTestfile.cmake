# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-review/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
