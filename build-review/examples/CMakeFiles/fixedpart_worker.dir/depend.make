# Empty dependencies file for fixedpart_worker.
# This may be replaced when dependencies are built.
