file(REMOVE_RECURSE
  "CMakeFiles/fixedpart_worker.dir/fixedpart_worker.cpp.o"
  "CMakeFiles/fixedpart_worker.dir/fixedpart_worker.cpp.o.d"
  "fixedpart-worker"
  "fixedpart-worker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixedpart_worker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
