file(REMOVE_RECURSE
  "CMakeFiles/batch_runner.dir/batch_runner.cpp.o"
  "CMakeFiles/batch_runner.dir/batch_runner.cpp.o.d"
  "batch_runner"
  "batch_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
