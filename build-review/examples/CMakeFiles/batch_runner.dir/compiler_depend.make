# Empty compiler generated dependencies file for batch_runner.
# This may be replaced when dependencies are built.
