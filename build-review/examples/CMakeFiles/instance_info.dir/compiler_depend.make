# Empty compiler generated dependencies file for instance_info.
# This may be replaced when dependencies are built.
