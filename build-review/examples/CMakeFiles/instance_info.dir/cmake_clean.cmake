file(REMOVE_RECURSE
  "CMakeFiles/instance_info.dir/instance_info.cpp.o"
  "CMakeFiles/instance_info.dir/instance_info.cpp.o.d"
  "instance_info"
  "instance_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instance_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
