file(REMOVE_RECURSE
  "CMakeFiles/quickstart.dir/quickstart.cpp.o"
  "CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  "quickstart"
  "quickstart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quickstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
