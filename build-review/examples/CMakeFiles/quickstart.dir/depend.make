# Empty dependencies file for quickstart.
# This may be replaced when dependencies are built.
