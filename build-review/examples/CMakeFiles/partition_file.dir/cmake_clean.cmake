file(REMOVE_RECURSE
  "CMakeFiles/partition_file.dir/partition_file.cpp.o"
  "CMakeFiles/partition_file.dir/partition_file.cpp.o.d"
  "partition_file"
  "partition_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
