# Empty compiler generated dependencies file for partition_file.
# This may be replaced when dependencies are built.
