# Empty dependencies file for quadrisection.
# This may be replaced when dependencies are built.
