file(REMOVE_RECURSE
  "CMakeFiles/quadrisection.dir/quadrisection.cpp.o"
  "CMakeFiles/quadrisection.dir/quadrisection.cpp.o.d"
  "quadrisection"
  "quadrisection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quadrisection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
