
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quadrisection.cpp" "examples/CMakeFiles/quadrisection.dir/quadrisection.cpp.o" "gcc" "examples/CMakeFiles/quadrisection.dir/quadrisection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/experiments/CMakeFiles/fp_experiments.dir/DependInfo.cmake"
  "/root/repo/build-review/src/place/CMakeFiles/fp_place.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ml/CMakeFiles/fp_ml.dir/DependInfo.cmake"
  "/root/repo/build-review/src/gen/CMakeFiles/fp_gen.dir/DependInfo.cmake"
  "/root/repo/build-review/src/part/CMakeFiles/fp_part.dir/DependInfo.cmake"
  "/root/repo/build-review/src/hg/CMakeFiles/fp_hg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/fp_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/svc/CMakeFiles/fp_svc.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/fp_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
