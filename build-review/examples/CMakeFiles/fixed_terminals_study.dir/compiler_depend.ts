# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fixed_terminals_study.
