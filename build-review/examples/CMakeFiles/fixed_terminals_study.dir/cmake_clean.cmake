file(REMOVE_RECURSE
  "CMakeFiles/fixed_terminals_study.dir/fixed_terminals_study.cpp.o"
  "CMakeFiles/fixed_terminals_study.dir/fixed_terminals_study.cpp.o.d"
  "fixed_terminals_study"
  "fixed_terminals_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixed_terminals_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
