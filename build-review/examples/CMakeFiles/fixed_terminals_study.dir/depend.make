# Empty dependencies file for fixed_terminals_study.
# This may be replaced when dependencies are built.
