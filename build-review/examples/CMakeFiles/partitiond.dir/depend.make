# Empty dependencies file for partitiond.
# This may be replaced when dependencies are built.
