file(REMOVE_RECURSE
  "CMakeFiles/partitiond.dir/partitiond.cpp.o"
  "CMakeFiles/partitiond.dir/partitiond.cpp.o.d"
  "partitiond"
  "partitiond.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partitiond.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
