file(REMOVE_RECURSE
  "CMakeFiles/suite_writer.dir/suite_writer.cpp.o"
  "CMakeFiles/suite_writer.dir/suite_writer.cpp.o.d"
  "suite_writer"
  "suite_writer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suite_writer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
