# Empty dependencies file for suite_writer.
# This may be replaced when dependencies are built.
