file(REMOVE_RECURSE
  "CMakeFiles/gen_large.dir/gen_large.cpp.o"
  "CMakeFiles/gen_large.dir/gen_large.cpp.o.d"
  "gen_large"
  "gen_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
