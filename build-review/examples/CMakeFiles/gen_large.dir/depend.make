# Empty dependencies file for gen_large.
# This may be replaced when dependencies are built.
