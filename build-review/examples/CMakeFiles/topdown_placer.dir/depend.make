# Empty dependencies file for topdown_placer.
# This may be replaced when dependencies are built.
