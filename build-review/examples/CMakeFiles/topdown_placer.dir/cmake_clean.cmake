file(REMOVE_RECURSE
  "CMakeFiles/topdown_placer.dir/topdown_placer.cpp.o"
  "CMakeFiles/topdown_placer.dir/topdown_placer.cpp.o.d"
  "topdown_placer"
  "topdown_placer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topdown_placer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
