# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/fp_tests[1]_include.cmake")
include("/root/repo/build-review/tests/fp_fault_tests[1]_include.cmake")
include("/root/repo/build-review/tests/fp_svc_tests[1]_include.cmake")
include("/root/repo/build-review/tests/fp_obs_tests[1]_include.cmake")
include("/root/repo/build-review/tests/fp_obs_http_tests[1]_include.cmake")
include("/root/repo/build-review/tests/fp_parallel_tests[1]_include.cmake")
include("/root/repo/build-review/tests/fp_server_tests[1]_include.cmake")
include("/root/repo/build-review/tests/fp_isolate_tests[1]_include.cmake")
include("/root/repo/build-review/tests/fp_trace_tests[1]_include.cmake")
include("/root/repo/build-review/tests/fp_log_tests[1]_include.cmake")
add_test(partitiond_worker_crash "bash" "/root/repo/tests/partitiond_worker_crash.sh" "/root/repo/build-review/examples/partitiond" "/root/repo/build-review/examples/fixedpart-worker")
set_tests_properties(partitiond_worker_crash PROPERTIES  LABELS "isolate;serve" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;129;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(batch_runner_resume "bash" "/root/repo/tests/batch_runner_resume.sh" "/root/repo/build-review/examples/batch_runner")
set_tests_properties(batch_runner_resume PROPERTIES  LABELS "svc" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;155;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(batch_runner_http "bash" "/root/repo/tests/batch_runner_http.sh" "/root/repo/build-review/examples/batch_runner")
set_tests_properties(batch_runner_http PROPERTIES  LABELS "obs-http;svc" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;162;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(partitiond_restart "bash" "/root/repo/tests/partitiond_restart.sh" "/root/repo/build-review/examples/partitiond")
set_tests_properties(partitiond_restart PROPERTIES  LABELS "serve" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;170;add_test;/root/repo/tests/CMakeLists.txt;0;")
