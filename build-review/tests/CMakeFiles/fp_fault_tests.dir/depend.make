# Empty dependencies file for fp_fault_tests.
# This may be replaced when dependencies are built.
