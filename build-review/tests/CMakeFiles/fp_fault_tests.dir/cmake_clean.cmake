file(REMOVE_RECURSE
  "CMakeFiles/fp_fault_tests.dir/test_fault_inject.cpp.o"
  "CMakeFiles/fp_fault_tests.dir/test_fault_inject.cpp.o.d"
  "CMakeFiles/fp_fault_tests.dir/test_fault_svc.cpp.o"
  "CMakeFiles/fp_fault_tests.dir/test_fault_svc.cpp.o.d"
  "fp_fault_tests"
  "fp_fault_tests.pdb"
  "fp_fault_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_fault_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
