# Empty dependencies file for fp_isolate_tests.
# This may be replaced when dependencies are built.
