file(REMOVE_RECURSE
  "CMakeFiles/fp_isolate_tests.dir/test_process_pool.cpp.o"
  "CMakeFiles/fp_isolate_tests.dir/test_process_pool.cpp.o.d"
  "fp_isolate_tests"
  "fp_isolate_tests.pdb"
  "fp_isolate_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_isolate_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
