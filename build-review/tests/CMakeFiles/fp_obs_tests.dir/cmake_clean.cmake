file(REMOVE_RECURSE
  "CMakeFiles/fp_obs_tests.dir/test_obs.cpp.o"
  "CMakeFiles/fp_obs_tests.dir/test_obs.cpp.o.d"
  "fp_obs_tests"
  "fp_obs_tests.pdb"
  "fp_obs_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_obs_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
