# Empty dependencies file for fp_obs_tests.
# This may be replaced when dependencies are built.
