file(REMOVE_RECURSE
  "CMakeFiles/fp_parallel_tests.dir/test_parallel_ml.cpp.o"
  "CMakeFiles/fp_parallel_tests.dir/test_parallel_ml.cpp.o.d"
  "fp_parallel_tests"
  "fp_parallel_tests.pdb"
  "fp_parallel_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_parallel_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
