# Empty compiler generated dependencies file for fp_parallel_tests.
# This may be replaced when dependencies are built.
