
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_balance.cpp" "tests/CMakeFiles/fp_tests.dir/test_balance.cpp.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_balance.cpp.o.d"
  "/root/repo/tests/test_cli.cpp" "tests/CMakeFiles/fp_tests.dir/test_cli.cpp.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_cli.cpp.o.d"
  "/root/repo/tests/test_coarsen.cpp" "tests/CMakeFiles/fp_tests.dir/test_coarsen.cpp.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_coarsen.cpp.o.d"
  "/root/repo/tests/test_constraint_metrics.cpp" "tests/CMakeFiles/fp_tests.dir/test_constraint_metrics.cpp.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_constraint_metrics.cpp.o.d"
  "/root/repo/tests/test_cross_validation.cpp" "tests/CMakeFiles/fp_tests.dir/test_cross_validation.cpp.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_cross_validation.cpp.o.d"
  "/root/repo/tests/test_derive.cpp" "tests/CMakeFiles/fp_tests.dir/test_derive.cpp.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_derive.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/fp_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_env.cpp" "tests/CMakeFiles/fp_tests.dir/test_env.cpp.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_env.cpp.o.d"
  "/root/repo/tests/test_exact.cpp" "tests/CMakeFiles/fp_tests.dir/test_exact.cpp.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_exact.cpp.o.d"
  "/root/repo/tests/test_experiments.cpp" "tests/CMakeFiles/fp_tests.dir/test_experiments.cpp.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_experiments.cpp.o.d"
  "/root/repo/tests/test_fixed.cpp" "tests/CMakeFiles/fp_tests.dir/test_fixed.cpp.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_fixed.cpp.o.d"
  "/root/repo/tests/test_fm.cpp" "tests/CMakeFiles/fp_tests.dir/test_fm.cpp.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_fm.cpp.o.d"
  "/root/repo/tests/test_fm_boundary.cpp" "tests/CMakeFiles/fp_tests.dir/test_fm_boundary.cpp.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_fm_boundary.cpp.o.d"
  "/root/repo/tests/test_gain_buckets.cpp" "tests/CMakeFiles/fp_tests.dir/test_gain_buckets.cpp.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_gain_buckets.cpp.o.d"
  "/root/repo/tests/test_gen.cpp" "tests/CMakeFiles/fp_tests.dir/test_gen.cpp.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_gen.cpp.o.d"
  "/root/repo/tests/test_guardrails.cpp" "tests/CMakeFiles/fp_tests.dir/test_guardrails.cpp.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_guardrails.cpp.o.d"
  "/root/repo/tests/test_hypergraph.cpp" "tests/CMakeFiles/fp_tests.dir/test_hypergraph.cpp.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_hypergraph.cpp.o.d"
  "/root/repo/tests/test_initial.cpp" "tests/CMakeFiles/fp_tests.dir/test_initial.cpp.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_initial.cpp.o.d"
  "/root/repo/tests/test_io_binary.cpp" "tests/CMakeFiles/fp_tests.dir/test_io_binary.cpp.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_io_binary.cpp.o.d"
  "/root/repo/tests/test_io_fpb.cpp" "tests/CMakeFiles/fp_tests.dir/test_io_fpb.cpp.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_io_fpb.cpp.o.d"
  "/root/repo/tests/test_io_hmetis.cpp" "tests/CMakeFiles/fp_tests.dir/test_io_hmetis.cpp.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_io_hmetis.cpp.o.d"
  "/root/repo/tests/test_io_netare.cpp" "tests/CMakeFiles/fp_tests.dir/test_io_netare.cpp.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_io_netare.cpp.o.d"
  "/root/repo/tests/test_io_solution.cpp" "tests/CMakeFiles/fp_tests.dir/test_io_solution.cpp.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_io_solution.cpp.o.d"
  "/root/repo/tests/test_kway.cpp" "tests/CMakeFiles/fp_tests.dir/test_kway.cpp.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_kway.cpp.o.d"
  "/root/repo/tests/test_multilevel.cpp" "tests/CMakeFiles/fp_tests.dir/test_multilevel.cpp.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_multilevel.cpp.o.d"
  "/root/repo/tests/test_pairwise.cpp" "tests/CMakeFiles/fp_tests.dir/test_pairwise.cpp.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_pairwise.cpp.o.d"
  "/root/repo/tests/test_partition_state.cpp" "tests/CMakeFiles/fp_tests.dir/test_partition_state.cpp.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_partition_state.cpp.o.d"
  "/root/repo/tests/test_place.cpp" "tests/CMakeFiles/fp_tests.dir/test_place.cpp.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_place.cpp.o.d"
  "/root/repo/tests/test_recursive_bisection.cpp" "tests/CMakeFiles/fp_tests.dir/test_recursive_bisection.cpp.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_recursive_bisection.cpp.o.d"
  "/root/repo/tests/test_regimes.cpp" "tests/CMakeFiles/fp_tests.dir/test_regimes.cpp.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_regimes.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/fp_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/fp_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/fp_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_subgraph.cpp" "tests/CMakeFiles/fp_tests.dir/test_subgraph.cpp.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_subgraph.cpp.o.d"
  "/root/repo/tests/test_system.cpp" "tests/CMakeFiles/fp_tests.dir/test_system.cpp.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_system.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/fp_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_transform.cpp" "tests/CMakeFiles/fp_tests.dir/test_transform.cpp.o" "gcc" "tests/CMakeFiles/fp_tests.dir/test_transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/experiments/CMakeFiles/fp_experiments.dir/DependInfo.cmake"
  "/root/repo/build-review/src/place/CMakeFiles/fp_place.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ml/CMakeFiles/fp_ml.dir/DependInfo.cmake"
  "/root/repo/build-review/src/gen/CMakeFiles/fp_gen.dir/DependInfo.cmake"
  "/root/repo/build-review/src/part/CMakeFiles/fp_part.dir/DependInfo.cmake"
  "/root/repo/build-review/src/hg/CMakeFiles/fp_hg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/fp_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/svc/CMakeFiles/fp_svc.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/fp_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
