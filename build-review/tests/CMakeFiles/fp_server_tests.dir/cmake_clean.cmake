file(REMOVE_RECURSE
  "CMakeFiles/fp_server_tests.dir/test_server.cpp.o"
  "CMakeFiles/fp_server_tests.dir/test_server.cpp.o.d"
  "fp_server_tests"
  "fp_server_tests.pdb"
  "fp_server_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_server_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
