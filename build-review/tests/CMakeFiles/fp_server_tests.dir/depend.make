# Empty dependencies file for fp_server_tests.
# This may be replaced when dependencies are built.
