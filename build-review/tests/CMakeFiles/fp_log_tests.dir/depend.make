# Empty dependencies file for fp_log_tests.
# This may be replaced when dependencies are built.
