file(REMOVE_RECURSE
  "CMakeFiles/fp_log_tests.dir/test_log.cpp.o"
  "CMakeFiles/fp_log_tests.dir/test_log.cpp.o.d"
  "fp_log_tests"
  "fp_log_tests.pdb"
  "fp_log_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_log_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
