# Empty compiler generated dependencies file for fp_svc_tests.
# This may be replaced when dependencies are built.
