file(REMOVE_RECURSE
  "CMakeFiles/fp_svc_tests.dir/test_svc.cpp.o"
  "CMakeFiles/fp_svc_tests.dir/test_svc.cpp.o.d"
  "fp_svc_tests"
  "fp_svc_tests.pdb"
  "fp_svc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_svc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
