# Empty dependencies file for fp_obs_http_tests.
# This may be replaced when dependencies are built.
