file(REMOVE_RECURSE
  "CMakeFiles/fp_obs_http_tests.dir/test_obs_http.cpp.o"
  "CMakeFiles/fp_obs_http_tests.dir/test_obs_http.cpp.o.d"
  "fp_obs_http_tests"
  "fp_obs_http_tests.pdb"
  "fp_obs_http_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_obs_http_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
