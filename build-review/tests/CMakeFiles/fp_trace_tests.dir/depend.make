# Empty dependencies file for fp_trace_tests.
# This may be replaced when dependencies are built.
