file(REMOVE_RECURSE
  "CMakeFiles/fp_trace_tests.dir/test_trace.cpp.o"
  "CMakeFiles/fp_trace_tests.dir/test_trace.cpp.o.d"
  "fp_trace_tests"
  "fp_trace_tests.pdb"
  "fp_trace_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_trace_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
